#include "scheduler/cbq_scheduler.hpp"

#include "common/assert.hpp"

namespace wfqs::scheduler {

CbqScheduler::CbqScheduler(std::uint32_t quantum_bytes,
                           const SharedPacketBuffer::Config& buffer)
    : quantum_(quantum_bytes), buffer_(buffer) {
    WFQS_REQUIRE(quantum_bytes > 0, "CBQ quantum must be positive");
}

std::uint32_t CbqScheduler::add_class(std::uint32_t class_weight) {
    WFQS_REQUIRE(class_weight > 0, "class weight must be positive");
    classes_.push_back(Class{class_weight, {}, 0, true, false, 0});
    return static_cast<std::uint32_t>(classes_.size() - 1);
}

net::FlowId CbqScheduler::add_flow_to_class(std::uint32_t class_id,
                                            std::uint32_t weight) {
    WFQS_REQUIRE(class_id < classes_.size(), "unknown class");
    WFQS_REQUIRE(weight > 0, "flow weight must be positive");
    flows_.push_back(Flow{weight, class_id, {}, 0, true, false});
    return static_cast<net::FlowId>(flows_.size() - 1);
}

net::FlowId CbqScheduler::add_flow(std::uint32_t weight) {
    return add_flow_to_class(add_class(weight), 1);
}

bool CbqScheduler::do_enqueue(const net::Packet& packet, net::TimeNs /*now*/) {
    WFQS_REQUIRE(packet.flow < flows_.size(), "unknown flow");
    const auto ref = buffer_.store(packet);
    if (!ref) return false;
    Flow& f = flows_[packet.flow];
    f.q.push_back(*ref);
    ++queued_;
    Class& c = classes_[f.class_id];
    ++c.backlog;
    if (!f.queued) {
        f.queued = true;
        f.fresh_turn = true;
        c.rr.push_back(packet.flow);
    }
    if (!c.in_active) {
        c.in_active = true;
        c.fresh_turn = true;
        active_classes_.push_back(f.class_id);
    }
    return true;
}

std::optional<net::Packet> CbqScheduler::serve_from_class(std::uint32_t cid) {
    // Inner DRR among the class's member flows; at most one packet.
    Class& c = classes_[cid];
    while (!c.rr.empty()) {
        const net::FlowId fid = c.rr.front();
        Flow& f = flows_[fid];
        if (f.q.empty()) {
            f.deficit = 0;
            f.fresh_turn = true;
            f.queued = false;
            c.rr.pop_front();
            continue;
        }
        if (f.fresh_turn) {
            f.deficit += std::uint64_t{quantum_} * f.weight;
            f.fresh_turn = false;
        }
        const std::uint32_t head = buffer_.peek(f.q.front()).size_bytes;
        if (f.deficit >= head) {
            f.deficit -= head;
            const BufferRef ref = f.q.front();
            f.q.pop_front();
            --queued_;
            --c.backlog;
            if (f.q.empty()) {
                f.deficit = 0;
                f.fresh_turn = true;
                f.queued = false;
                c.rr.pop_front();
            }
            return buffer_.retrieve(ref);
        }
        f.fresh_turn = true;
        c.rr.pop_front();
        c.rr.push_back(fid);
    }
    return std::nullopt;
}

std::optional<net::Packet> CbqScheduler::do_dequeue(net::TimeNs /*now*/) {
    while (!active_classes_.empty()) {
        const std::uint32_t cid = active_classes_.front();
        Class& c = classes_[cid];
        if (c.backlog == 0) {
            c.deficit = 0;
            c.fresh_turn = true;
            c.in_active = false;
            active_classes_.pop_front();
            continue;
        }
        if (c.fresh_turn) {
            c.deficit += std::uint64_t{quantum_} * c.weight;
            c.fresh_turn = false;
        }
        // Peek the class's next candidate size: the head of its inner
        // round robin. If the class deficit covers it, serve; else rotate.
        std::uint32_t head_size = 0;
        for (const net::FlowId fid : c.rr) {
            if (!flows_[fid].q.empty()) {
                head_size = buffer_.peek(flows_[fid].q.front()).size_bytes;
                break;
            }
        }
        if (head_size != 0 && c.deficit >= head_size) {
            const auto pkt = serve_from_class(cid);
            WFQS_ASSERT(pkt.has_value());
            // The inner round robin may pick a different member whose
            // head is larger than the peeked one; clamp rather than wrap.
            c.deficit -= std::min<std::uint64_t>(c.deficit, pkt->size_bytes);
            return pkt;
        }
        c.fresh_turn = true;
        active_classes_.pop_front();
        active_classes_.push_back(cid);
    }
    return std::nullopt;
}

}  // namespace wfqs::scheduler
