// Shared packet buffer — the middle block of the scheduler architecture
// (Fig. 1; ref [9] "a shared buffer architecture for a gigabit ethernet
// packet switch").
//
// Packets of any size share one memory pool of fixed-size cells chained
// by next-pointers, exactly like the referenced shared-buffer switch: a
// store returns the address of the packet's first cell — the pointer the
// sorter carries next to the tag — and retrieval frees the chain.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/packet.hpp"

namespace wfqs::scheduler {

using BufferRef = std::uint32_t;

class SharedPacketBuffer {
public:
    struct Config {
        std::size_t total_bytes = 4 << 20;  ///< pool size
        std::size_t cell_bytes = 64;
    };

    SharedPacketBuffer();
    explicit SharedPacketBuffer(const Config& config);

    /// Store a packet; returns the head-cell address, or nullopt when the
    /// free pool cannot hold it (tail drop).
    std::optional<BufferRef> store(const net::Packet& packet);

    /// Retrieve and free a stored packet.
    net::Packet retrieve(BufferRef ref);

    /// Inspect a stored packet without freeing it (the schedulers' header
    /// lookup, e.g. DRR checking the head-of-line size).
    const net::Packet& peek(BufferRef ref) const;

    std::size_t stored_packets() const { return stored_packets_; }
    std::size_t used_cells() const { return total_cells_ - free_cells_.size(); }
    std::size_t total_cells() const { return total_cells_; }
    std::uint64_t drops() const { return drops_; }
    std::size_t peak_used_cells() const { return peak_used_cells_; }

private:
    struct Cell {
        net::Packet packet;   ///< populated in the head cell only
        BufferRef next;
        bool is_head = false;
    };
    std::size_t cells_for(std::uint32_t bytes) const;

    std::size_t cell_bytes_;
    std::size_t total_cells_;
    std::vector<Cell> cells_;
    std::vector<BufferRef> free_cells_;
    std::size_t stored_packets_ = 0;
    std::size_t peak_used_cells_ = 0;
    std::uint64_t drops_ = 0;
};

}  // namespace wfqs::scheduler
