#include "scheduler/wfq_scheduler.hpp"

#include "common/assert.hpp"

namespace wfqs::scheduler {

FairQueueingScheduler::FairQueueingScheduler(const Config& config,
                                             std::unique_ptr<baselines::TagQueue> queue)
    : config_(config),
      computer_(wfq::make_tag_computer(config.algorithm, config.link_rate_bps)),
      queue_(std::move(queue)),
      buffer_(config.buffer),
      quantizer_(config.tag_granularity_bits) {
    WFQS_REQUIRE(queue_ != nullptr, "a tag queue is required");
}

net::FlowId FairQueueingScheduler::add_flow(std::uint32_t weight) {
    return computer_->add_flow(weight);
}

bool FairQueueingScheduler::do_enqueue(const net::Packet& packet, net::TimeNs now) {
    const auto ref = buffer_.store(packet);
    if (!ref) return false;  // tail drop
    const Fixed finish = computer_->on_arrival(packet.flow, now, packet.size_bits());
    try {
        queue_->insert(quantizer_.quantize(finish), *ref);
    } catch (...) {
        // A faulted insert must not leak the buffer cell: release it so a
        // post-recovery retry re-stores the packet cleanly.
        buffer_.retrieve(*ref);
        throw;
    }
    return true;
}

std::optional<net::Packet> FairQueueingScheduler::do_dequeue(net::TimeNs now) {
    const auto entry = queue_->pop_min();
    if (!entry) return std::nullopt;
    // Feed the served tag back into the virtual clock (SCFQ/WF2Q+ hooks;
    // the WFQ clock ignores it), rescaled to the virtual-time domain.
    computer_->on_service_start(quantizer_.dequantize(entry->tag), now);
    return buffer_.retrieve(entry->payload);
}

std::string FairQueueingScheduler::name() const {
    return computer_->name() + "+" + queue_->name();
}

}  // namespace wfqs::scheduler
