// Class-based queueing (CBQ, Floyd & Jacobson [4]) in the form the paper
// describes it: "a hierarchical approach to DRR" (§I-B). Flows are
// grouped into classes; byte-accurate deficit round robin runs across
// classes and again across the flows inside the selected class, so
// bandwidth is shared class-first (link sharing), then per flow.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "scheduler/packet_buffer.hpp"
#include "scheduler/scheduler.hpp"

namespace wfqs::scheduler {

class CbqScheduler final : public Scheduler {
public:
    explicit CbqScheduler(std::uint32_t quantum_bytes = 1500,
                          const SharedPacketBuffer::Config& buffer = {});

    /// Define a traffic class with its share of the link.
    std::uint32_t add_class(std::uint32_t class_weight);

    /// Add a flow inside a class. `weight` shares the class bandwidth
    /// among its member flows.
    net::FlowId add_flow_to_class(std::uint32_t class_id, std::uint32_t weight);

    /// Scheduler interface: a bare add_flow creates a fresh class of the
    /// same weight holding just this flow (degenerates to plain DRR).
    net::FlowId add_flow(std::uint32_t weight) override;

    bool do_enqueue(const net::Packet& packet, net::TimeNs now) override;
    std::optional<net::Packet> do_dequeue(net::TimeNs now) override;

    bool has_packets() const override { return queued_ > 0; }
    std::size_t queued_packets() const override { return queued_; }
    std::string name() const override { return "CBQ"; }

    std::uint64_t drops() const { return buffer_.drops(); }
    std::size_t class_count() const { return classes_.size(); }

private:
    struct Flow {
        std::uint32_t weight;
        std::uint32_t class_id;
        std::deque<BufferRef> q;
        std::uint64_t deficit = 0;
        bool fresh_turn = true;
        bool queued = false;  ///< present in its class's round-robin ring
    };
    struct Class {
        std::uint32_t weight;
        std::deque<net::FlowId> rr;  ///< backlogged member flows
        std::uint64_t deficit = 0;
        bool fresh_turn = true;
        bool in_active = false;
        std::size_t backlog = 0;  ///< packets queued across members
    };

    std::optional<net::Packet> serve_from_class(std::uint32_t cid);

    std::uint32_t quantum_;
    SharedPacketBuffer buffer_;
    std::vector<Flow> flows_;
    std::vector<Class> classes_;
    std::deque<std::uint32_t> active_classes_;
    std::size_t queued_ = 0;
};

}  // namespace wfqs::scheduler
