#include "scheduler/wf2q_scheduler.hpp"

#include "common/assert.hpp"

namespace wfqs::scheduler {

Wf2qScheduler::Wf2qScheduler(const Config& config,
                             std::unique_ptr<baselines::TagQueue> start_queue,
                             std::unique_ptr<baselines::TagQueue> finish_queue)
    : config_(config),
      clock_(config.link_rate_bps),
      start_queue_(std::move(start_queue)),
      finish_queue_(std::move(finish_queue)),
      buffer_(config.buffer),
      quantizer_(config.tag_granularity_bits) {
    WFQS_REQUIRE(start_queue_ != nullptr && finish_queue_ != nullptr,
                 "both sort structures are required");
}

net::FlowId Wf2qScheduler::add_flow(std::uint32_t weight) {
    return clock_.add_flow(weight);
}

std::uint32_t Wf2qScheduler::allocate_slot(std::uint64_t finish_tag, BufferRef ref) {
    std::uint32_t slot;
    if (!free_slots_.empty()) {
        slot = free_slots_.back();
        free_slots_.pop_back();
    } else {
        slot = static_cast<std::uint32_t>(slots_.size());
        slots_.emplace_back();
    }
    slots_[slot] = Pending{finish_tag, ref, true};
    return slot;
}

bool Wf2qScheduler::do_enqueue(const net::Packet& packet, net::TimeNs now) {
    const auto ref = buffer_.store(packet);
    if (!ref) return false;
    // Sort #1: by virtual start (eligibility order).
    const Fixed finish = clock_.on_arrival(packet.flow, now, packet.size_bits());
    const Fixed start = clock_.last_start();
    const std::uint32_t slot = allocate_slot(quantizer_.quantize(finish), *ref);
    start_queue_->insert(quantizer_.quantize(start), slot);
    promote_eligible();
    return true;
}

void Wf2qScheduler::promote_eligible() {
    // Packets whose virtual start has been reached move to sort #2 (by
    // virtual finish) — the WF2Q eligibility test S <= V(t).
    const std::uint64_t v = quantizer_.quantize(clock_.virtual_time());
    while (const auto head = start_queue_->peek_min()) {
        if (head->tag > v) break;
        const auto moved = start_queue_->pop_min();
        finish_queue_->insert(slots_[moved->payload].finish_tag, moved->payload);
    }
}

std::optional<net::Packet> Wf2qScheduler::do_dequeue(net::TimeNs now) {
    clock_.advance_to(now);
    promote_eligible();
    if (finish_queue_->empty() && !start_queue_->empty()) {
        // Under exact GPS tracking every backlogged flow's head has
        // S <= V(t) — GPS is already serving it — so an empty eligible
        // set can only be tag-quantization rounding the comparison the
        // wrong way. Force the head across rather than idle the link.
        const auto moved = start_queue_->pop_min();
        finish_queue_->insert(slots_[moved->payload].finish_tag, moved->payload);
    }
    const auto entry = finish_queue_->pop_min();
    if (!entry) return std::nullopt;
    Pending& p = slots_[entry->payload];
    WFQS_ASSERT(p.in_use);
    p.in_use = false;
    free_slots_.push_back(entry->payload);
    return buffer_.retrieve(p.ref);
}

bool Wf2qScheduler::has_packets() const {
    return !start_queue_->empty() || !finish_queue_->empty();
}

std::size_t Wf2qScheduler::queued_packets() const {
    return start_queue_->size() + finish_queue_->size();
}

std::string Wf2qScheduler::name() const {
    return "WF2Q(2x " + finish_queue_->name() + ")";
}

}  // namespace wfqs::scheduler
