// The complete scheduler of Fig. 1: tag computation circuit + shared
// packet buffer + tag sort/retrieve structure.
//
// The sort structure is pluggable (any baselines::TagQueue, including the
// paper's multi-bit tree sorter), which is what lets the experiments swap
// the sorter for a heap and verify identical departure orders, or swap in
// binning and measure the QoS damage. The tag computation is equally
// pluggable across the fair-queueing family (§II: WFQ, WF2Q+, SCFQ).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "baselines/tag_queue.hpp"
#include "scheduler/packet_buffer.hpp"
#include "scheduler/scheduler.hpp"
#include "wfq/tag_computer.hpp"

namespace wfqs::scheduler {

class FairQueueingScheduler final : public Scheduler {
public:
    struct Config {
        std::uint64_t link_rate_bps = 1'000'000'000;
        wfq::FairQueueingKind algorithm = wfq::FairQueueingKind::Wfq;
        /// Tag-step granularity (§III-D rounding): positive keeps
        /// fractional virtual-time bits, negative coarsens the step so a
        /// small tag word covers a deep buffer. See TagQuantizer.
        int tag_granularity_bits = -4;
        SharedPacketBuffer::Config buffer = {};
    };

    /// `queue`: the tag sort/retrieve structure (Fig. 1's right block).
    FairQueueingScheduler(const Config& config,
                          std::unique_ptr<baselines::TagQueue> queue);

    net::FlowId add_flow(std::uint32_t weight) override;
    bool do_enqueue(const net::Packet& packet, net::TimeNs now) override;
    std::optional<net::Packet> do_dequeue(net::TimeNs now) override;

    bool has_packets() const override { return !queue_->empty(); }
    std::size_t queued_packets() const override { return queue_->size(); }
    std::string name() const override;
    bool recover() override { return queue_->recover(); }

    const SharedPacketBuffer& buffer() const { return buffer_; }
    const baselines::TagQueue& tag_queue() const { return *queue_; }
    wfq::TagComputer& tag_computer() { return *computer_; }
    std::uint64_t drops() const { return buffer_.drops(); }

private:
    Config config_;
    std::unique_ptr<wfq::TagComputer> computer_;
    std::unique_ptr<baselines::TagQueue> queue_;
    SharedPacketBuffer buffer_;
    wfq::TagQuantizer quantizer_;
};

}  // namespace wfqs::scheduler
