// MetricsRegistry: one named place for every counter, gauge, and
// cycle-latency histogram the simulated circuit produces, with uniform
// JSON and plain-table snapshot export.
//
// Two registration styles, matching how the codebase already keeps its
// numbers:
//
//   * owned metrics — `registry.counter("drops").inc()` — for code that
//     has no tally of its own (benches, examples);
//   * views — `register_counter_fn`, `register_histogram` — read-through
//     adapters over tallies a component already maintains (SorterStats
//     fields, SramStats, scheduler counters). The component stays the
//     single writer; the registry samples at snapshot time, so attaching
//     a registry adds zero cost to the hot path.
//
// Snapshots sort metric names so exported JSON diffs cleanly between
// runs — the property the BENCH_*.json perf-trajectory artifacts rely on.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hpp"

namespace wfqs::obs {

class JsonWriter;

/// Monotonic event count.
class Counter {
public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }

private:
    std::uint64_t value_ = 0;
};

/// Point-in-time scalar.
class Gauge {
public:
    void set(double v) { value_ = v; }
    double value() const { return value_; }

private:
    double value_ = 0.0;
};

/// Latency distribution in clock cycles: exact streaming moments
/// (RunningStats) plus fixed bins (Histogram) for approximate quantiles.
/// The default geometry — one bin per cycle over [0, 64) — makes the
/// per-cycle distribution of the paper's 4-cycle pipeline stages exact.
///
/// Recording is cheap by default: hot paths that produce integer cycle
/// counts use record_cycles(), which (for unit-width bins starting at 0 —
/// every cycle histogram in the tree) is a handful of integer adds and
/// one direct bin increment — no NaN test, no FP divide, no clamping
/// arithmetic. The moments it tracks are exact for integer inputs;
/// stats() folds both lanes into one summary.
class CycleHistogram {
public:
    CycleHistogram(double lo = 0.0, double hi = 64.0, std::size_t bins = 64)
        : hist_(lo, hi, bins),
          unit_bins_(lo == 0.0 && hi == static_cast<double>(bins)) {}

    void record(double v) {
        if (std::isnan(v)) {
            hist_.add(v);  // lands in the histogram's NaN-reject counter
            return;
        }
        stats_.add(v);
        hist_.add(v);
    }

    /// Integer fast lane (hot paths). Falls back to record() when the bin
    /// geometry is not one-bin-per-cycle, when the value is too large for
    /// its square to stay exact (>= 2^31), or when either integer
    /// accumulator would overflow — so the uint64 moments never wrap.
    void record_cycles(std::uint64_t cycles) {
        constexpr std::uint64_t kSquareSafe = std::uint64_t{1} << 31;
        constexpr std::uint64_t kU64Max = ~std::uint64_t{0};
        if (!unit_bins_ || cycles >= kSquareSafe ||
            isum_ > kU64Max - cycles ||
            isumsq_ > kU64Max - cycles * cycles) {
            record(static_cast<double>(cycles));
            return;
        }
        ++icount_;
        isum_ += cycles;
        isumsq_ += cycles * cycles;
        imin_ = cycles < imin_ ? cycles : imin_;
        imax_ = cycles > imax_ ? cycles : imax_;
        const std::size_t last = hist_.bin_count() - 1;
        hist_.bump(cycles < last ? static_cast<std::size_t>(cycles) : last);
    }

    /// Bulk credit: `n` identical samples in one call (the batched host
    /// pipeline records one value per batch; the --threads 1 delegate
    /// path records its whole run at once). Falls back to per-sample
    /// recording when the fast lane cannot hold the block exactly.
    void record_cycles(std::uint64_t cycles, std::uint64_t n);

    /// Fold another histogram in (both lanes + bins). Geometries must be
    /// identical. This is what makes windowed/per-thread histograms
    /// mergeable: record locally off the shared registry, merge at
    /// quiescence.
    void merge(const CycleHistogram& other);

    /// Combined summary over both recording lanes. Exact for the integer
    /// lane (moments accumulate in uint64), Welford for the double lane.
    RunningStats stats() const;
    const Histogram& bins() const { return hist_; }

    /// Quantile estimated from the bins (upper edge of the covering bin,
    /// clamped to the exact max). Good to ±1 bin width.
    double approx_quantile(double q) const;

    void write_json(JsonWriter& w) const;

private:
    RunningStats stats_;
    Histogram hist_;
    bool unit_bins_;
    // Integer lane accumulators (record_cycles).
    std::uint64_t icount_ = 0;
    std::uint64_t isum_ = 0;
    std::uint64_t isumsq_ = 0;
    std::uint64_t imin_ = ~std::uint64_t{0};
    std::uint64_t imax_ = 0;
};

class MetricsRegistry {
public:
    // -- owned metrics (find-or-create by name) ---------------------------
    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    CycleHistogram& histogram(const std::string& name, double lo = 0.0,
                              double hi = 64.0, std::size_t bins = 64);

    // -- views over component-owned tallies -------------------------------
    // Callables are sampled at snapshot time, so the component they read
    // must outlive the last snapshot taken from this registry.
    void register_counter_fn(const std::string& name,
                             std::function<std::uint64_t()> fn);
    void register_gauge_fn(const std::string& name, std::function<double()> fn);
    /// Non-owning histogram view; `h` must outlive the last snapshot.
    void register_histogram(const std::string& name, const CycleHistogram* h);

    // -- snapshot export ---------------------------------------------------
    /// Flat sorted name → value maps, resolving views.
    std::map<std::string, std::uint64_t> counter_values() const;
    std::map<std::string, double> gauge_values() const;
    std::map<std::string, const CycleHistogram*> histograms() const;

    bool contains(const std::string& name) const;
    std::size_t size() const;

    /// {"counters":{...},"gauges":{...},"histograms":{...}}
    void write_json(JsonWriter& w) const;
    std::string to_json() const;
    /// Human-readable snapshot (TextTable): one row per metric.
    std::string to_table() const;

private:
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<CycleHistogram>> owned_histograms_;
    std::map<std::string, std::function<std::uint64_t()>> counter_fns_;
    std::map<std::string, std::function<double()>> gauge_fns_;
    std::map<std::string, const CycleHistogram*> histogram_views_;
};

}  // namespace wfqs::obs
