// Machine-readable export for the bench binaries.
//
// Every bench keeps printing its human-readable tables, and additionally
// accepts
//
//     <bench> --json <path>        (also --json=<path>)
//     WFQS_METRICS_JSON=<path>     (env; a directory — trailing '/' or an
//                                   existing dir — expands to
//                                   <dir>/BENCH_<name>.json)
//
// to write its MetricsRegistry snapshot as JSON. The emitted document is
//
//     {"bench": <name>, "schema": 1, "metrics": {counters, gauges,
//      histograms}}
//
// with sorted metric names, so committed BENCH_*.json artifacts diff
// cleanly between runs and feed the perf trajectory.
#pragma once

#include <optional>
#include <string>

#include "obs/metrics.hpp"

namespace wfqs::obs {

/// Resolve the export path from argv/env as described above; nullopt
/// means "no export requested".
std::optional<std::string> bench_json_path(const std::string& bench_name,
                                           int argc, char** argv);

/// Write the snapshot document to `path`.
void write_bench_json(const MetricsRegistry& registry,
                      const std::string& bench_name, const std::string& path);

/// The one-liner benches use: registry + "did the run ask for JSON?".
/// finish() exports if a path was requested and reports where.
class BenchReporter {
public:
    BenchReporter(std::string bench_name, int argc, char** argv)
        : name_(std::move(bench_name)), path_(bench_json_path(name_, argc, argv)) {}

    MetricsRegistry& registry() { return registry_; }
    const std::optional<std::string>& path() const { return path_; }

    /// Export (if requested) and print a one-line note to stdout.
    void finish();

private:
    std::string name_;
    std::optional<std::string> path_;
    MetricsRegistry registry_;
};

}  // namespace wfqs::obs
