// Machine-readable export for the bench binaries.
//
// Every bench keeps printing its human-readable tables, and additionally
// accepts
//
//     <bench> --json <path>        (also --json=<path>)
//     WFQS_METRICS_JSON=<path>     (env; a directory — trailing '/' or an
//                                   existing dir — expands to
//                                   <dir>/BENCH_<name>.json)
//
// to write its MetricsRegistry snapshot as JSON. The emitted document is
//
//     {"bench": <name>, "schema": 1, "metrics": {counters, gauges,
//      histograms}}
//
// with sorted metric names, so committed BENCH_*.json artifacts diff
// cleanly between runs and feed the perf trajectory.
// Benches additionally accept
//
//     <bench> --seed <n>           (also --seed=<n>)
//     WFQS_SEED=<n>                (env; the flag wins)
//
// to shift every RNG seeding site in the bench while keeping distinct
// sites distinct (see BenchReporter::seed). The resolved seed of the
// first site is exported as a top-level "seed" field so every committed
// artifact records how to reproduce it.
// Telemetry riders (all benches):
//
//     <bench> --timeseries         (also WFQS_TIMESERIES=1)
//     <bench> --live <path>        (also --live=<path>, WFQS_LIVE=<path>)
//
// --timeseries adds a windowed "timeseries" section (and, when the bench
// attached a HostProfiler, a "host_profile" section) to the JSON export.
// Benches that tick the reporter's TimeSeries get real windows; benches
// that never tick still export one whole-run window, so the section's
// shape is uniform across the suite. --live names a status file a
// profiler-attached bench rewrites during the run for `wfqs_top`.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"

namespace wfqs::obs {

class HostProfiler;

/// Resolve the export path from argv/env as described above; nullopt
/// means "no export requested".
std::optional<std::string> bench_json_path(const std::string& bench_name,
                                           int argc, char** argv);

/// Resolve the seed override from `--seed <n>` / `--seed=<n>` / WFQS_SEED;
/// nullopt means "use each site's default".
std::optional<std::uint64_t> bench_seed_override(int argc, char** argv);

/// Resolve the host-pipeline thread budget from `--threads <n>` /
/// `--threads=<n>` / WFQS_THREADS (flag wins). Returns 1 — the
/// sequential SimDriver path — when nothing is requested; 0 is rejected.
unsigned bench_threads(int argc, char** argv);

/// Resolve the sorter backend from `--backend model|ffs` / `--backend=` /
/// WFQS_BACKEND (flag wins). Returns the backend *name*; "model" when
/// nothing is requested; anything else is rejected. bench_io stays
/// layering-clean (obs does not include baselines) — benches map the
/// name through baselines::backend_from_name.
std::string bench_backend(int argc, char** argv);

/// `--timeseries` / WFQS_TIMESERIES=1: include windowed telemetry
/// sections in the JSON export.
bool bench_timeseries(int argc, char** argv);

/// `--live <path>` / `--live=<path>` / WFQS_LIVE: live status file for
/// wfqs_top; nullopt means "no live view requested".
std::optional<std::string> bench_live_path(int argc, char** argv);

/// Write the snapshot document to `path`. A resolved `seed` is emitted as
/// a top-level "seed" field (omitted when the bench has no RNG).
void write_bench_json(const MetricsRegistry& registry,
                      const std::string& bench_name, const std::string& path,
                      std::optional<std::uint64_t> seed = std::nullopt);

/// The one-liner benches use: registry + "did the run ask for JSON?".
/// finish() exports if a path was requested and reports where.
class BenchReporter {
public:
    BenchReporter(std::string bench_name, int argc, char** argv)
        : name_(std::move(bench_name)),
          path_(bench_json_path(name_, argc, argv)),
          seed_override_(bench_seed_override(argc, argv)),
          timeseries_(bench_timeseries(argc, argv)),
          live_path_(bench_live_path(argc, argv)) {}

    MetricsRegistry& registry() { return registry_; }
    const std::optional<std::string>& path() const { return path_; }
    bool timeseries_enabled() const { return timeseries_; }
    const std::optional<std::string>& live_path() const { return live_path_; }

    /// Reporter-owned windowed recorder. Benches with a natural time axis
    /// register probes and tick it during the run; finish() exports it
    /// under "timeseries" when --timeseries was passed. A bench that
    /// never ticks still gets one whole-run window (every registry
    /// counter as a probe) so the section is uniformly present.
    TimeSeries& series() { return series_; }

    /// Include this profiler's per-stage summary and timeline in the
    /// export (under "host_profile"); must outlive finish().
    void set_profiler(const HostProfiler* profiler) { profiler_ = profiler; }

    /// Resolve the seed for one RNG seeding site. Without an override the
    /// site keeps its historical default (committed artifacts stay
    /// byte-identical); with `--seed N` the site becomes `N + site_default`
    /// so a bench with several sites still seeds them distinctly. The
    /// exported "seed" field records the override (what --seed must be
    /// passed to reproduce the run), or the first site default when the
    /// run used the defaults.
    std::uint64_t seed(std::uint64_t site_default) {
        if (!seed_) seed_ = seed_override_ ? *seed_override_ : site_default;
        return seed_override_ ? *seed_override_ + site_default : site_default;
    }

    /// Count host-side benchmark operations toward `host.ops_per_sec`.
    /// Call once (or accumulate over phases) before finish().
    void record_host_ops(std::uint64_t ops) { host_ops_ += ops; }

    /// Record which sorter backend the run used; exported as a top-level
    /// "backend" string in the JSON document so every committed artifact
    /// says what produced its host-side numbers.
    void record_backend(std::string backend) { backend_ = std::move(backend); }

    /// Export (if requested) and print a one-line note to stdout. Also
    /// stamps host wall-clock gauges into the registry first —
    /// `host.elapsed_ms` since construction and, when record_host_ops()
    /// was called, `host.ops_per_sec`. These measure the *host* simulation
    /// speed (they vary machine to machine); trajectory tooling must
    /// compare modeled metrics only and treat host.* as informational.
    void finish();

private:
    std::string name_;
    std::optional<std::string> path_;
    std::optional<std::uint64_t> seed_override_;
    std::optional<std::uint64_t> seed_;
    bool timeseries_ = false;
    std::optional<std::string> live_path_;
    std::string backend_;
    const HostProfiler* profiler_ = nullptr;
    std::chrono::steady_clock::time_point host_start_ =
        std::chrono::steady_clock::now();
    std::uint64_t host_ops_ = 0;
    MetricsRegistry registry_;
    TimeSeries series_;
};

}  // namespace wfqs::obs
