#include "obs/metrics.hpp"

#include <sstream>

#include "common/assert.hpp"
#include "common/table.hpp"
#include "obs/json.hpp"

namespace wfqs::obs {

RunningStats CycleHistogram::stats() const {
    RunningStats s = stats_;
    if (icount_ > 0) {
        // m2 in long double: isumsq_ can approach 2^64, where a double's
        // 53-bit mantissa makes isumsq - n*mean^2 cancel catastrophically.
        const long double n = static_cast<long double>(icount_);
        const long double sum = static_cast<long double>(isum_);
        const long double mean = sum / n;
        const long double m2 =
            static_cast<long double>(isumsq_) - n * mean * mean;
        s.merge(RunningStats::from_moments(
            icount_, static_cast<double>(mean), static_cast<double>(m2),
            static_cast<double>(imin_), static_cast<double>(imax_),
            static_cast<double>(sum)));
    }
    return s;
}

void CycleHistogram::record_cycles(std::uint64_t cycles, std::uint64_t n) {
    constexpr std::uint64_t kSquareSafe = std::uint64_t{1} << 31;
    constexpr std::uint64_t kU64Max = ~std::uint64_t{0};
    const std::uint64_t sq = cycles < kSquareSafe ? cycles * cycles : 0;
    const bool block_fits =
        unit_bins_ && cycles < kSquareSafe &&
        (cycles == 0 || n <= (kU64Max - isum_) / cycles) &&
        (sq == 0 || n <= (kU64Max - isumsq_) / sq);
    if (!block_fits) {
        // Rare lane (non-unit bins or accumulators near overflow): the
        // scalar path already knows how to spill to the double lane.
        for (std::uint64_t i = 0; i < n; ++i) record_cycles(cycles);
        return;
    }
    icount_ += n;
    isum_ += cycles * n;
    isumsq_ += sq * n;
    imin_ = cycles < imin_ ? cycles : imin_;
    imax_ = cycles > imax_ ? cycles : imax_;
    const std::size_t last = hist_.bin_count() - 1;
    hist_.bump(cycles < last ? static_cast<std::size_t>(cycles) : last, n);
}

void CycleHistogram::merge(const CycleHistogram& other) {
    constexpr std::uint64_t kU64Max = ~std::uint64_t{0};
    hist_.merge(other.hist_);  // rejects geometry mismatches first
    stats_.merge(other.stats_);
    if (other.icount_ == 0) return;
    if (isum_ > kU64Max - other.isum_ || isumsq_ > kU64Max - other.isumsq_) {
        // Integer lanes together would wrap: fold the other side's lane
        // into the double-lane moments instead (same math as stats()).
        const long double n = static_cast<long double>(other.icount_);
        const long double sum = static_cast<long double>(other.isum_);
        const long double mean = sum / n;
        const long double m2 =
            static_cast<long double>(other.isumsq_) - n * mean * mean;
        stats_.merge(RunningStats::from_moments(
            other.icount_, static_cast<double>(mean), static_cast<double>(m2),
            static_cast<double>(other.imin_), static_cast<double>(other.imax_),
            static_cast<double>(sum)));
        return;
    }
    icount_ += other.icount_;
    isum_ += other.isum_;
    isumsq_ += other.isumsq_;
    imin_ = other.imin_ < imin_ ? other.imin_ : imin_;
    imax_ = other.imax_ > imax_ ? other.imax_ : imax_;
}

double CycleHistogram::approx_quantile(double q) const {
    WFQS_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
    const RunningStats s = stats();
    if (s.count() == 0) return 0.0;
    const std::uint64_t target =
        static_cast<std::uint64_t>(q * static_cast<double>(s.count() - 1)) + 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < hist_.bin_count(); ++i) {
        seen += hist_.bin(i);
        if (seen >= target) return std::min(hist_.bin_hi(i), s.max());
    }
    return s.max();
}

void CycleHistogram::write_json(JsonWriter& w) const {
    const RunningStats stats_combined = stats();
    w.begin_object();
    w.field("count", stats_combined.count());
    w.field("mean", stats_combined.mean());
    w.field("stddev", stats_combined.stddev());
    w.field("min", stats_combined.min());
    w.field("max", stats_combined.max());
    w.field("p50", approx_quantile(0.50));
    w.field("p90", approx_quantile(0.90));
    w.field("p99", approx_quantile(0.99));
    w.field("nan_rejects", hist_.nan_rejects());
    w.key("bins").begin_object();
    w.field("lo", hist_.bin_lo(0));
    w.field("hi", hist_.bin_hi(hist_.bin_count() - 1));
    w.key("counts").begin_array();
    for (std::size_t i = 0; i < hist_.bin_count(); ++i) w.value(hist_.bin(i));
    w.end_array();
    w.end_object();
    w.end_object();
}

namespace {

template <typename Map>
void require_fresh_name(const Map& m, const std::string& name, const char* kind) {
    WFQS_REQUIRE(m.find(name) == m.end(),
                 "metric name '" + name + "' already registered as a " + kind);
}

}  // namespace

Counter& MetricsRegistry::counter(const std::string& name) {
    auto it = counters_.find(name);
    if (it == counters_.end()) {
        require_fresh_name(counter_fns_, name, "counter view");
        it = counters_.emplace(name, std::make_unique<Counter>()).first;
    }
    return *it->second;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
    auto it = gauges_.find(name);
    if (it == gauges_.end()) {
        require_fresh_name(gauge_fns_, name, "gauge view");
        it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
    }
    return *it->second;
}

CycleHistogram& MetricsRegistry::histogram(const std::string& name, double lo,
                                           double hi, std::size_t bins) {
    auto it = owned_histograms_.find(name);
    if (it == owned_histograms_.end()) {
        require_fresh_name(histogram_views_, name, "histogram view");
        it = owned_histograms_
                 .emplace(name, std::make_unique<CycleHistogram>(lo, hi, bins))
                 .first;
    }
    return *it->second;
}

void MetricsRegistry::register_counter_fn(const std::string& name,
                                          std::function<std::uint64_t()> fn) {
    require_fresh_name(counters_, name, "counter");
    require_fresh_name(counter_fns_, name, "counter view");
    counter_fns_.emplace(name, std::move(fn));
}

void MetricsRegistry::register_gauge_fn(const std::string& name,
                                        std::function<double()> fn) {
    require_fresh_name(gauges_, name, "gauge");
    require_fresh_name(gauge_fns_, name, "gauge view");
    gauge_fns_.emplace(name, std::move(fn));
}

void MetricsRegistry::register_histogram(const std::string& name,
                                         const CycleHistogram* h) {
    WFQS_REQUIRE(h != nullptr, "histogram view must not be null");
    require_fresh_name(owned_histograms_, name, "histogram");
    require_fresh_name(histogram_views_, name, "histogram view");
    histogram_views_.emplace(name, h);
}

std::map<std::string, std::uint64_t> MetricsRegistry::counter_values() const {
    std::map<std::string, std::uint64_t> out;
    for (const auto& [name, c] : counters_) out.emplace(name, c->value());
    for (const auto& [name, fn] : counter_fns_) out.emplace(name, fn());
    return out;
}

std::map<std::string, double> MetricsRegistry::gauge_values() const {
    std::map<std::string, double> out;
    for (const auto& [name, g] : gauges_) out.emplace(name, g->value());
    for (const auto& [name, fn] : gauge_fns_) out.emplace(name, fn());
    return out;
}

std::map<std::string, const CycleHistogram*> MetricsRegistry::histograms() const {
    std::map<std::string, const CycleHistogram*> out;
    for (const auto& [name, h] : owned_histograms_) out.emplace(name, h.get());
    for (const auto& [name, h] : histogram_views_) out.emplace(name, h);
    return out;
}

bool MetricsRegistry::contains(const std::string& name) const {
    return counters_.count(name) || counter_fns_.count(name) ||
           gauges_.count(name) || gauge_fns_.count(name) ||
           owned_histograms_.count(name) || histogram_views_.count(name);
}

std::size_t MetricsRegistry::size() const {
    return counters_.size() + counter_fns_.size() + gauges_.size() +
           gauge_fns_.size() + owned_histograms_.size() + histogram_views_.size();
}

void MetricsRegistry::write_json(JsonWriter& w) const {
    w.begin_object();
    w.key("counters").begin_object();
    for (const auto& [name, v] : counter_values()) w.field(name, v);
    w.end_object();
    w.key("gauges").begin_object();
    for (const auto& [name, v] : gauge_values()) w.field(name, v);
    w.end_object();
    w.key("histograms").begin_object();
    for (const auto& [name, h] : histograms()) {
        w.key(name);
        h->write_json(w);
    }
    w.end_object();
    w.end_object();
}

std::string MetricsRegistry::to_json() const {
    std::ostringstream os;
    JsonWriter w(os);
    write_json(w);
    return os.str();
}

std::string MetricsRegistry::to_table() const {
    TextTable t({"metric", "kind", "value"});
    for (const auto& [name, v] : counter_values())
        t.add_row({name, "counter", TextTable::num(v)});
    for (const auto& [name, v] : gauge_values())
        t.add_row({name, "gauge", TextTable::num(v, 4)});
    for (const auto& [name, h] : histograms()) {
        const auto s = h->stats();
        t.add_row({name, "histogram",
                   "n=" + TextTable::num(s.count()) +
                       " mean=" + TextTable::num(s.mean(), 2) +
                       " p99=" + TextTable::num(h->approx_quantile(0.99), 2) +
                       " max=" + TextTable::num(s.max(), 2)});
    }
    return t.render();
}

}  // namespace wfqs::obs
