#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

#include "common/assert.hpp"

namespace wfqs::obs {

void JsonWriter::pre_value() {
    if (after_key_) {
        after_key_ = false;
        return;
    }
    if (!stack_.empty()) {
        WFQS_ASSERT_MSG(stack_.back() == Ctx::Array,
                        "JSON object members need a key() before the value");
        if (!first_.back()) os_ << ',';
        first_.back() = false;
    }
}

JsonWriter& JsonWriter::begin_object() {
    pre_value();
    os_ << '{';
    stack_.push_back(Ctx::Object);
    first_.push_back(true);
    return *this;
}

JsonWriter& JsonWriter::end_object() {
    WFQS_ASSERT(!stack_.empty() && stack_.back() == Ctx::Object);
    os_ << '}';
    stack_.pop_back();
    first_.pop_back();
    return *this;
}

JsonWriter& JsonWriter::begin_array() {
    pre_value();
    os_ << '[';
    stack_.push_back(Ctx::Array);
    first_.push_back(true);
    return *this;
}

JsonWriter& JsonWriter::end_array() {
    WFQS_ASSERT(!stack_.empty() && stack_.back() == Ctx::Array);
    os_ << ']';
    stack_.pop_back();
    first_.pop_back();
    return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
    WFQS_ASSERT_MSG(!stack_.empty() && stack_.back() == Ctx::Object,
                    "JSON key() outside of an object");
    if (!first_.back()) os_ << ',';
    first_.back() = false;
    os_ << '"' << escape(k) << "\":";
    after_key_ = true;
    return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
    pre_value();
    os_ << '"' << escape(v) << '"';
    return *this;
}

JsonWriter& JsonWriter::value(double v) {
    if (!std::isfinite(v)) return null();
    pre_value();
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.12g", v);
    os_ << buf;
    return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
    pre_value();
    os_ << v;
    return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
    pre_value();
    os_ << v;
    return *this;
}

JsonWriter& JsonWriter::value(bool v) {
    pre_value();
    os_ << (v ? "true" : "false");
    return *this;
}

JsonWriter& JsonWriter::null() {
    pre_value();
    os_ << "null";
    return *this;
}

std::string JsonWriter::escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

}  // namespace wfqs::obs
