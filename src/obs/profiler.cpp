#include "obs/profiler.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/assert.hpp"
#include "common/table.hpp"
#include "obs/json.hpp"

namespace wfqs::obs {

const char* HostProfiler::stage_name(Stage s) {
    switch (s) {
        case Stage::kGen: return "gen";
        case Stage::kMerge: return "merge";
        case Stage::kSched: return "sched";
        case Stage::kEgress: return "egress";
    }
    return "unknown";
}

HostProfiler::HostProfiler(std::size_t budget, std::chrono::milliseconds period)
    : series_(budget), period_(period) {
    WFQS_REQUIRE(period.count() > 0, "sampler period must be positive");
}

HostProfiler::~HostProfiler() {
    if (sampler_.joinable()) stop_sampling();
}

void HostProfiler::add_gauge(const std::string& name,
                             std::function<double()> fn) {
    WFQS_REQUIRE(!sampling(), "register probes before start_sampling()");
    series_.add_gauge(name, std::move(fn));
}

void HostProfiler::add_counter(const std::string& name,
                               std::function<std::uint64_t()> fn) {
    WFQS_REQUIRE(!sampling(), "register probes before start_sampling()");
    series_.add_counter(name, std::move(fn));
}

void HostProfiler::begin_run() {
    if (began_) return;
    began_ = true;
    t0_ = std::chrono::steady_clock::now();
}

void HostProfiler::end_run() {
    if (!began_ || ended_) return;
    ended_ = true;
    t1_ = std::chrono::steady_clock::now();
}

void HostProfiler::register_stage_probes() {
    if (probes_registered_) return;
    probes_registered_ = true;
    for (std::size_t i = 0; i < kStageCount; ++i) {
        const Stage s = static_cast<Stage>(i);
        const std::string base = std::string("stage.") + stage_name(s);
        const StageCounters* c = &stages_[i];
        series_.add_counter(base + ".items",
                            [c] { return c->items(); });
        series_.add_counter(base + ".stall_ns",
                            [c] { return c->stall_ns(); });
        series_.add_counter(base + ".busy_ns",
                            [c] { return c->busy_ns(); });
    }
}

void HostProfiler::start_sampling() {
    WFQS_REQUIRE(!sampling(), "sampler already running");
    register_stage_probes();
    begin_run();
    stop_.store(false, std::memory_order_relaxed);
    sampler_ = std::thread([this] { sampler_loop(); });
}

void HostProfiler::stop_sampling() {
    if (!sampler_.joinable()) return;
    stop_.store(true, std::memory_order_relaxed);
    sampler_.join();
    end_run();
}

void HostProfiler::sampler_loop() {
    while (!stop_.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(period_);
        const double t = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0_)
                             .count();
        series_.tick(t);
        if (!live_path_.empty()) write_live();
    }
}

double HostProfiler::elapsed_seconds() const {
    if (!began_) return 0.0;
    const auto end = ended_ ? t1_ : std::chrono::steady_clock::now();
    return std::chrono::duration<double>(end - t0_).count();
}

std::vector<HostProfiler::StageSummary> HostProfiler::summary() const {
    const double alive_ns = elapsed_seconds() * 1e9;
    std::uint64_t total_busy = 0;
    for (const auto& c : stages_) total_busy += c.busy_ns();
    std::vector<StageSummary> out;
    out.reserve(kStageCount);
    for (std::size_t i = 0; i < kStageCount; ++i) {
        const StageCounters& c = stages_[i];
        StageSummary s{};
        s.name = stage_name(static_cast<Stage>(i));
        s.threads = stage_threads_[i];
        s.items = c.items();
        s.batches = c.batches();
        s.stall_episodes = c.stall_episodes();
        s.stall_ns = c.stall_ns();
        s.busy_ns = c.busy_ns();
        if (s.busy_ns > 0 && total_busy > 0) {
            // Sampled-busy mode (sequential sections): share of measured
            // time, which is what bounds a pipeline's speedup.
            s.busy_fraction =
                static_cast<double>(s.busy_ns) / static_cast<double>(total_busy);
        } else if (s.threads > 0 && alive_ns > 0.0) {
            const double budget = alive_ns * static_cast<double>(s.threads);
            double frac = 1.0 - static_cast<double>(s.stall_ns) / budget;
            s.busy_fraction = frac < 0.0 ? 0.0 : frac;
        }
        out.push_back(s);
    }
    return out;
}

HostProfiler::Stage HostProfiler::bottleneck() const {
    const std::vector<StageSummary> s = summary();
    std::size_t best = static_cast<std::size_t>(Stage::kSched);
    double best_frac = -1.0;
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i].items == 0 && s[i].threads == 0) continue;
        if (s[i].busy_fraction > best_frac) {
            best_frac = s[i].busy_fraction;
            best = i;
        }
    }
    return static_cast<Stage>(best);
}

void HostProfiler::write_json(JsonWriter& w) const {
    w.begin_object();
    w.field("elapsed_s", elapsed_seconds());
    w.field("bottleneck", stage_name(bottleneck()));
    w.key("stages").begin_array();
    for (const StageSummary& s : summary()) {
        w.begin_object();
        w.field("name", s.name);
        w.field("threads", static_cast<std::uint64_t>(s.threads));
        w.field("items", s.items);
        w.field("batches", s.batches);
        w.field("stall_episodes", s.stall_episodes);
        w.field("stall_ns", s.stall_ns);
        w.field("busy_ns", s.busy_ns);
        w.field("busy_fraction", s.busy_fraction);
        w.end_object();
    }
    w.end_array();
    w.key("timeseries");
    series_.write_json(w);
    w.end_object();
}

std::string HostProfiler::to_table() const {
    TextTable t({"stage", "threads", "items", "stalls", "stall_ms", "busy_ms",
                 "busy_frac"});
    for (const StageSummary& s : summary()) {
        if (s.items == 0 && s.threads == 0 && s.busy_ns == 0) continue;
        t.add_row({s.name, TextTable::num(static_cast<std::uint64_t>(s.threads)),
                   TextTable::num(s.items), TextTable::num(s.stall_episodes),
                   TextTable::num(static_cast<double>(s.stall_ns) / 1e6, 3),
                   TextTable::num(static_cast<double>(s.busy_ns) / 1e6, 3),
                   TextTable::num(s.busy_fraction, 4)});
    }
    std::ostringstream os;
    os << t.render();
    os << "bottleneck: " << stage_name(bottleneck()) << "\n";
    return os.str();
}

void HostProfiler::write_live() const {
    const std::string tmp = live_path_ + ".tmp";
    {
        std::ofstream out(tmp);
        if (!out) return;  // live view is best-effort
        out << "# wfqs-live v1\n";
        out << "elapsed_s " << elapsed_seconds() << "\n";
        for (const StageSummary& s : summary())
            out << "stage " << s.name << " threads " << s.threads << " items "
                << s.items << " stalls " << s.stall_episodes << " stall_ns "
                << s.stall_ns << " busy_ns " << s.busy_ns << " busy "
                << s.busy_fraction << "\n";
        for (const auto& line : live_lines_) out << line() << "\n";
        // Sparkline tails: the last few closed windows of every probe
        // (counters are per-window deltas, gauges close samples).
        constexpr std::size_t kTail = 32;
        const std::size_t n = series_.window_count();
        const std::size_t from = n > kTail ? n - kTail : 0;
        if (n != 0) out << "window_t " << series_.times()[n - 1] << "\n";
        for (const std::string& name : series_.counter_names()) {
            const auto& v = series_.counter_series(name);
            out << "series " << name;
            for (std::size_t i = from; i < n; ++i) out << " " << v[i];
            out << "\n";
        }
        for (const std::string& name : series_.gauge_names()) {
            const auto& v = series_.gauge_series(name);
            out << "series " << name;
            for (std::size_t i = from; i < n; ++i) out << " " << v[i];
            out << "\n";
        }
    }
    std::rename(tmp.c_str(), live_path_.c_str());
}

}  // namespace wfqs::obs
