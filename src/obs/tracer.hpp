// Cycle-level event tracer emitting Chrome trace-event JSON, loadable in
// chrome://tracing or https://ui.perfetto.dev.
//
// Timebase. The simulated circuit's hw::Clock is the interesting axis, so
// spans are stamped in *clock cycles* and rendered with one cycle per
// trace microsecond (track "circuit"); host wall time for each span is
// kept alongside in the event's args. Instant events carry an explicit
// caller-supplied timestamp — the simulation driver uses packet time in
// nanoseconds on its own track.
//
// Cost discipline. Instrumented hot paths go through the WFQS_TRACE_*
// macros, which compile to nothing when WFQS_DISABLE_TRACING is defined
// and otherwise reduce to a single pointer test while no tracer is
// installed — an idle simulation pays one predictable branch per span.
// Installation is process-global.
//
// Threads. Recording is serialized by an internal mutex so the host
// pipeline's stage threads (ParallelSimDriver: sorter spans from the
// schedule thread, net instants from the egress thread) can share one
// installed tracer without corrupting the event log. Span begin/end
// pairs still form a single process-wide stack, so nesting attribution
// is only meaningful per emitting thread; the simulation's cycle-stamped
// spans all come from the one thread that owns the hw::Clock.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace wfqs::hw {
class Clock;
}

namespace wfqs::obs {

class JsonWriter;

class Tracer {
public:
    /// `clock`: spans are stamped from it; null stamps spans from wall time.
    explicit Tracer(const hw::Clock* clock = nullptr) : clock_(clock) {}
    ~Tracer();

    Tracer(const Tracer&) = delete;
    Tracer& operator=(const Tracer&) = delete;

    /// Process-global current tracer (null = tracing off). install(this)
    /// activates; the destructor deactivates if still current.
    static Tracer* current() { return current_; }
    static void install(Tracer* t) { current_ = t; }

    // -- recording ---------------------------------------------------------
    /// Open a span at the current clock cycle. Spans nest (a stack).
    void begin_span(const char* name, const char* category);
    /// Close the innermost open span.
    void end_span();
    /// Point event at an explicit timestamp (trace microseconds).
    void instant(const char* name, const char* category, double ts_us);
    /// Counter-track sample (rendered as a little area chart).
    void counter(const char* name, double ts_us, double value);

    // -- export ------------------------------------------------------------
    std::size_t event_count() const {
        std::lock_guard<std::mutex> lock(mutex_);
        return events_.size();
    }
    std::size_t open_spans() const {
        std::lock_guard<std::mutex> lock(mutex_);
        return open_.size();
    }
    void clear();

    /// {"traceEvents":[...],"displayTimeUnit":"ns"} — open spans are
    /// closed at the current clock before writing.
    void write_json(std::ostream& os);
    std::string to_json();
    void save(const std::string& path);

private:
    struct Event {
        const char* name;
        const char* category;
        char phase;          ///< 'X' complete, 'i' instant, 'C' counter
        double ts_us;
        double dur_us;       ///< 'X' only
        std::uint64_t wall_ns;      ///< span begin, host clock
        std::uint64_t wall_dur_ns;  ///< 'X' only
        double value;        ///< 'C' only
    };
    struct OpenSpan {
        const char* name;
        const char* category;
        std::uint64_t begin_cycle;
        std::uint64_t begin_wall_ns;
    };

    std::uint64_t now_cycles() const;
    static std::uint64_t wall_ns();

    static Tracer* current_;
    const hw::Clock* clock_;
    mutable std::mutex mutex_;  ///< serializes recording across stage threads
    std::vector<Event> events_;
    std::vector<OpenSpan> open_;
};

/// RAII span against the installed tracer; ~free when none is installed.
class TraceSpan {
public:
    TraceSpan(const char* name, const char* category) {
        if (Tracer* t = Tracer::current()) {
            t->begin_span(name, category);
            tracer_ = t;
        }
    }
    ~TraceSpan() {
        if (tracer_) tracer_->end_span();
    }

    TraceSpan(const TraceSpan&) = delete;
    TraceSpan& operator=(const TraceSpan&) = delete;

private:
    Tracer* tracer_ = nullptr;
};

}  // namespace wfqs::obs

#ifdef WFQS_DISABLE_TRACING
#define WFQS_TRACE_CONCAT_(a, b) a##b
#define WFQS_TRACE_SPAN(name, category) \
    do {                                \
    } while (0)
#define WFQS_TRACE_INSTANT(name, category, ts_us) \
    do {                                          \
    } while (0)
#else
#define WFQS_TRACE_CONCAT_IMPL_(a, b) a##b
#define WFQS_TRACE_CONCAT_(a, b) WFQS_TRACE_CONCAT_IMPL_(a, b)
/// Scoped span covering the rest of the enclosing block.
#define WFQS_TRACE_SPAN(name, category) \
    ::wfqs::obs::TraceSpan WFQS_TRACE_CONCAT_(wfqs_trace_span_, __COUNTER__)(name, category)
/// Point event at an explicit trace-microsecond timestamp.
#define WFQS_TRACE_INSTANT(name, category, ts_us)                         \
    do {                                                                  \
        if (::wfqs::obs::Tracer* wfqs_trace_t_ = ::wfqs::obs::Tracer::current()) \
            wfqs_trace_t_->instant(name, category, ts_us);                \
    } while (0)
#endif
