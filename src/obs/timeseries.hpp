// TimeSeries: the time dimension for the metrics layer.
//
// The registry (metrics.hpp) exports one terminal snapshot per run; this
// recorder turns any of its counter/gauge/histogram views into *windowed*
// series so a run can answer "when" and "where", not just "how much" —
// the continuous-observability substrate the host-pipeline profiler, the
// `--timeseries` bench sections, and `wfqs_top` are built on.
//
// Sampling model. The owner calls tick(t) on whatever axis it cares
// about — hw clock cycles (fault_soak ticks every N verified ops) or
// host wall-clock seconds (the profiler's sampler thread). Every
// stride()-th tick closes a window: each probe is sampled once and the
// window stores
//   * counters   — the delta since the previous window (rate-friendly);
//   * gauges     — the value at the window close;
//   * histograms — a HistWindow: bin-count/count/sum/nan deltas, enough
//     for windowed mean and ±1-bin quantiles, and mergeable.
//
// Fixed sample budget. Memory never exceeds `budget` windows: when a
// close would overflow, adjacent windows merge pairwise (counters add,
// gauges average, histograms merge) and the stride doubles, so an
// arbitrarily long run decays smoothly to half-resolution instead of
// truncating. Probes are sampled only at window close, so a tick that
// doesn't close a window costs one branch.
//
// Threading: none. tick() and the probe callables run on the caller's
// thread; cross-thread sources must expose atomics through their probe
// fn (see obs::HostProfiler) — the single-writer rule of metrics.hpp
// applies unchanged.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace wfqs::obs {

class JsonWriter;

/// One closed window of a histogram probe: pure deltas, so windows merge
/// by addition exactly like the cumulative CycleHistogram lanes they are
/// diffed from (NaN rejects included; integer-lane overflow spills in the
/// source histogram keep count/sum consistent here because both are read
/// through the folded stats() view).
struct HistWindow {
    std::uint64_t count = 0;
    double sum = 0.0;
    std::uint64_t nan_rejects = 0;
    std::vector<std::uint64_t> bins;

    void merge(const HistWindow& other);
    double mean() const {
        return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
    /// Quantile from the bins (upper edge of the covering bin over
    /// [lo, hi); good to ±1 bin width, like CycleHistogram).
    double quantile(double q, double lo, double hi) const;
};

class TimeSeries {
public:
    /// `budget`: maximum retained windows; even, at least 2.
    explicit TimeSeries(std::size_t budget = 256);

    // -- probes (register before the first tick) --------------------------
    /// `fn` returns a cumulative count; windows store the per-window delta.
    void add_counter(const std::string& name, std::function<std::uint64_t()> fn);
    /// `fn` returns a point-in-time value; windows store the close sample.
    void add_gauge(const std::string& name, std::function<double()> fn);
    /// Non-owning view; `h` must outlive the last tick. Windows store the
    /// per-window HistWindow delta.
    void add_histogram(const std::string& name, const CycleHistogram* h);

    // -- recording --------------------------------------------------------
    /// Advance the time axis to `t` (non-decreasing; any unit). Closes a
    /// window every stride()-th call.
    void tick(double t);

    // -- inspection -------------------------------------------------------
    std::size_t budget() const { return budget_; }
    std::size_t stride() const { return stride_; }
    std::size_t window_count() const { return t_.size(); }
    const std::vector<double>& times() const { return t_; }
    std::vector<std::string> counter_names() const;
    std::vector<std::string> gauge_names() const;
    std::vector<std::string> histogram_names() const;
    const std::vector<std::uint64_t>& counter_series(const std::string& name) const;
    const std::vector<double>& gauge_series(const std::string& name) const;
    const std::vector<HistWindow>& histogram_series(const std::string& name) const;

    /// {"budget":..,"stride":..,"t":[..],"counters":{..},"gauges":{..},
    ///  "histograms":{name:{"lo","hi","count":[..],"mean":[..],
    ///  "p50":[..],"p99":[..],"nan_rejects":[..]}}}
    void write_json(JsonWriter& w) const;

private:
    struct CounterSeries {
        std::string name;
        std::function<std::uint64_t()> fn;
        std::uint64_t last = 0;
        std::vector<std::uint64_t> v;
    };
    struct GaugeSeries {
        std::string name;
        std::function<double()> fn;
        std::vector<double> v;
    };
    struct HistSeries {
        std::string name;
        const CycleHistogram* h;
        double lo = 0.0, hi = 0.0;
        std::uint64_t last_count = 0;
        double last_sum = 0.0;
        std::uint64_t last_nan = 0;
        std::vector<std::uint64_t> last_bins;
        std::vector<HistWindow> v;
    };

    void close_window(double t);
    void downsample();

    std::size_t budget_;
    std::size_t stride_ = 1;
    std::size_t pending_ = 0;
    double last_t_ = 0.0;
    bool ticked_ = false;
    std::vector<double> t_;  ///< window close times
    std::vector<CounterSeries> counters_;
    std::vector<GaugeSeries> gauges_;
    std::vector<HistSeries> hists_;
};

}  // namespace wfqs::obs
