// HostProfiler: per-stage timelines for the host pipeline (and for the
// sequential driver's stage *sections*), built on TimeSeries.
//
// The model. A run is split into the four pipeline stages — gen, merge,
// schedule, egress. Each stage owns a StageCounters block of single-
// writer atomics (items, stall episodes, stall nanoseconds, sampled busy
// nanoseconds): the stage's thread bumps them with relaxed load+store
// (one writer means no RMW, no lock prefix), and the profiler's sampler
// thread reads them concurrently — TSan-clean by construction.
//
// Two complementary cost measurements, because the cheap one differs by
// execution mode:
//   * pipeline stages measure *stall* time: the ring wait loops read the
//     clock only at stall-episode boundaries, so a stage that never
//     blocks pays nothing. busy = 1 - stall / (alive x threads); the
//     bottleneck is the stage that never waits (argmax busy).
//   * sequential stage sections measure *busy* time with SampledTimer:
//     1-in-64 brackets are timed and charged x64, so the expected cost
//     is two clock reads per 64 packets. busy fractions here are shares
//     of measured time — this is what attributes the sequential run's
//     time to gen/sched/egress and explains what a pipeline can and
//     cannot speed up.
//
// Sampling. start_sampling() launches a wall-clock sampler thread that
// ticks an internal TimeSeries (budgeted, self-downsampling) over the
// registered probes — per-stage item/stall counters plus any ring-
// occupancy gauges the driver adds — and optionally rewrites a live
// status file (`# wfqs-live v1`, tmp+rename) that wfqs_top polls.
// Probes must be registered before start_sampling(); sampling must stop
// before anything a probe reads is destroyed.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "obs/timeseries.hpp"

namespace wfqs::obs {

class JsonWriter;

class HostProfiler {
public:
    enum class Stage : std::uint8_t { kGen, kMerge, kSched, kEgress };
    static constexpr std::size_t kStageCount = 4;
    static const char* stage_name(Stage s);

    /// Per-stage tallies, sampled cross-thread. Updates are relaxed
    /// fetch_adds — a stage's writers touch them per batch, per stall
    /// episode, or per sampled bracket, never per item, so the RMW cost
    /// is noise (and the gen stage legitimately has several writer
    /// threads). Readers see slightly stale but untorn values.
    class StageCounters {
    public:
        void add_items(std::uint64_t n) { bump(items_, n); }
        void inc_batches() { bump(batches_, 1); }
        void inc_stalls() { bump(stall_episodes_, 1); }
        void add_stalls(std::uint64_t n) { bump(stall_episodes_, n); }
        void add_stall_ns(std::uint64_t ns) { bump(stall_ns_, ns); }
        void add_busy_ns(std::uint64_t ns) { bump(busy_ns_, ns); }

        std::uint64_t items() const { return items_.load(std::memory_order_relaxed); }
        std::uint64_t batches() const {
            return batches_.load(std::memory_order_relaxed);
        }
        std::uint64_t stall_episodes() const {
            return stall_episodes_.load(std::memory_order_relaxed);
        }
        std::uint64_t stall_ns() const {
            return stall_ns_.load(std::memory_order_relaxed);
        }
        std::uint64_t busy_ns() const {
            return busy_ns_.load(std::memory_order_relaxed);
        }

    private:
        static void bump(std::atomic<std::uint64_t>& a, std::uint64_t n) {
            a.fetch_add(n, std::memory_order_relaxed);
        }
        std::atomic<std::uint64_t> items_{0};
        std::atomic<std::uint64_t> batches_{0};
        std::atomic<std::uint64_t> stall_episodes_{0};
        std::atomic<std::uint64_t> stall_ns_{0};
        std::atomic<std::uint64_t> busy_ns_{0};  ///< SampledTimer credit
    };

    struct StageSummary {
        const char* name;
        unsigned threads;
        std::uint64_t items;
        std::uint64_t batches;
        std::uint64_t stall_episodes;
        std::uint64_t stall_ns;
        std::uint64_t busy_ns;
        /// Stall-measured stages: 1 - stall/(alive x threads). Busy-
        /// measured sections: share of total measured busy time.
        double busy_fraction;
    };

    /// `budget`: TimeSeries window budget; `period`: sampler tick period.
    explicit HostProfiler(std::size_t budget = 256,
                          std::chrono::milliseconds period =
                              std::chrono::milliseconds(1));
    ~HostProfiler();

    HostProfiler(const HostProfiler&) = delete;
    HostProfiler& operator=(const HostProfiler&) = delete;

    // -- stage wiring (driver side) ---------------------------------------
    StageCounters& stage(Stage s) { return stages_[static_cast<std::size_t>(s)]; }
    const StageCounters& stage(Stage s) const {
        return stages_[static_cast<std::size_t>(s)];
    }
    void set_stage_threads(Stage s, unsigned n) {
        stage_threads_[static_cast<std::size_t>(s)] = n;
    }
    unsigned stage_threads(Stage s) const {
        return stage_threads_[static_cast<std::size_t>(s)];
    }

    /// Extra probes (ring occupancies, throughput counters). Register
    /// before start_sampling(); what `fn` reads must outlive sampling.
    void add_gauge(const std::string& name, std::function<double()> fn);
    void add_counter(const std::string& name, std::function<std::uint64_t()> fn);

    // -- run lifecycle -----------------------------------------------------
    /// Mark the measured interval. start_sampling()/stop_sampling() call
    /// these implicitly; call directly when running without a sampler.
    void begin_run();
    void end_run();

    /// Launch the sampler thread: per-stage item/stall probes (registered
    /// on first start) plus everything added above, ticked every period.
    void start_sampling();
    void stop_sampling();
    bool sampling() const { return sampler_.joinable(); }

    /// Live status file for wfqs_top (written tmp+rename every tick
    /// while sampling). Set before start_sampling(); empty disables.
    void set_live_path(const std::string& path) { live_path_ = path; }

    /// Append one extra line to every live status write — e.g. the
    /// reshard soak's per-bank `bank <i> state <s> occ <n> ...` rows.
    /// The callback runs on the sampler thread, so whatever it reads
    /// must be safe to read concurrently; register before
    /// start_sampling().
    void add_live_line(std::function<std::string()> fn) {
        live_lines_.push_back(std::move(fn));
    }

    // -- results (read after end_run/stop_sampling) ------------------------
    double elapsed_seconds() const;
    std::vector<StageSummary> summary() const;
    /// Stage with the highest busy fraction among active stages — the
    /// one the others wait for.
    Stage bottleneck() const;
    const TimeSeries& series() const { return series_; }

    /// {"elapsed_s":..,"bottleneck":"..","stages":[{...}],
    ///  "timeseries":{...}}
    void write_json(JsonWriter& w) const;
    /// Human-readable per-stage table plus the bottleneck verdict.
    std::string to_table() const;

private:
    void register_stage_probes();
    void sampler_loop();
    void write_live() const;

    StageCounters stages_[kStageCount];
    unsigned stage_threads_[kStageCount] = {0, 0, 0, 0};
    TimeSeries series_;
    std::chrono::milliseconds period_;
    std::string live_path_;
    std::vector<std::function<std::string()>> live_lines_;
    bool probes_registered_ = false;
    std::chrono::steady_clock::time_point t0_;
    std::chrono::steady_clock::time_point t1_;
    bool began_ = false, ended_ = false;
    std::thread sampler_;
    std::atomic<bool> stop_{false};
};

/// 1-in-kStride scoped-timer sampling against a StageCounters block:
/// every kStride-th bracket is timed (two steady_clock reads) and charged
/// x kStride as busy time, so a section wrapped in SampledTimer::Scope
/// costs ~2 clock reads / 64 calls. Null target disables entirely.
class SampledTimer {
public:
    static constexpr std::uint64_t kStride = 64;

    explicit SampledTimer(HostProfiler::StageCounters* target)
        : target_(target) {}

    class Scope {
    public:
        explicit Scope(SampledTimer& t) {
            if (t.target_ != nullptr && t.calls_++ % kStride == 0) {
                target_ = t.target_;
                start_ = std::chrono::steady_clock::now();
            }
        }
        ~Scope() {
            if (target_ != nullptr) {
                const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                                    std::chrono::steady_clock::now() - start_)
                                    .count();
                target_->add_busy_ns(static_cast<std::uint64_t>(ns) * kStride);
            }
        }
        Scope(const Scope&) = delete;
        Scope& operator=(const Scope&) = delete;

    private:
        HostProfiler::StageCounters* target_ = nullptr;
        std::chrono::steady_clock::time_point start_;
    };

    Scope time() { return Scope(*this); }

private:
    friend class Scope;
    HostProfiler::StageCounters* target_;
    std::uint64_t calls_ = 0;
};

}  // namespace wfqs::obs
