#include "obs/timeseries.hpp"

#include "common/assert.hpp"
#include "obs/json.hpp"

namespace wfqs::obs {

void HistWindow::merge(const HistWindow& other) {
    WFQS_REQUIRE(bins.size() == other.bins.size(),
                 "histogram window merge needs identical bin counts");
    count += other.count;
    sum += other.sum;
    nan_rejects += other.nan_rejects;
    for (std::size_t i = 0; i < bins.size(); ++i) bins[i] += other.bins[i];
}

double HistWindow::quantile(double q, double lo, double hi) const {
    WFQS_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
    // Quantiles come from the binned lane only: the double-lane spill of
    // the source CycleHistogram also lands in its bins, so binned totals
    // track `count` except for clamped outliers (last bin, as upstream).
    std::uint64_t binned = 0;
    for (const std::uint64_t b : bins) binned += b;
    if (binned == 0) return 0.0;
    const std::uint64_t target =
        static_cast<std::uint64_t>(q * static_cast<double>(binned - 1)) + 1;
    std::uint64_t seen = 0;
    const double width = (hi - lo) / static_cast<double>(bins.size());
    for (std::size_t i = 0; i < bins.size(); ++i) {
        seen += bins[i];
        if (seen >= target) return lo + width * static_cast<double>(i + 1);
    }
    return hi;
}

TimeSeries::TimeSeries(std::size_t budget) : budget_(budget) {
    WFQS_REQUIRE(budget >= 2 && budget % 2 == 0,
                 "time series budget must be even and at least 2");
}

void TimeSeries::add_counter(const std::string& name,
                             std::function<std::uint64_t()> fn) {
    WFQS_REQUIRE(!ticked_, "register probes before the first tick");
    CounterSeries s;
    s.name = name;
    s.fn = std::move(fn);
    s.last = s.fn();
    counters_.push_back(std::move(s));
}

void TimeSeries::add_gauge(const std::string& name, std::function<double()> fn) {
    WFQS_REQUIRE(!ticked_, "register probes before the first tick");
    GaugeSeries s;
    s.name = name;
    s.fn = std::move(fn);
    gauges_.push_back(std::move(s));
}

void TimeSeries::add_histogram(const std::string& name, const CycleHistogram* h) {
    WFQS_REQUIRE(h != nullptr, "histogram probe must not be null");
    WFQS_REQUIRE(!ticked_, "register probes before the first tick");
    HistSeries s;
    s.name = name;
    s.h = h;
    const Histogram& bins = h->bins();
    s.lo = bins.bin_lo(0);
    s.hi = bins.bin_hi(bins.bin_count() - 1);
    s.last_bins.assign(bins.bin_count(), 0);
    for (std::size_t i = 0; i < bins.bin_count(); ++i) s.last_bins[i] = bins.bin(i);
    const RunningStats st = h->stats();
    s.last_count = st.count();
    s.last_sum = st.sum();
    s.last_nan = bins.nan_rejects();
    hists_.push_back(std::move(s));
}

void TimeSeries::tick(double t) {
    WFQS_ASSERT_MSG(!ticked_ || t >= last_t_, "time series ticks went backwards");
    ticked_ = true;
    last_t_ = t;
    if (++pending_ < stride_) return;
    pending_ = 0;
    close_window(t);
}

void TimeSeries::close_window(double t) {
    if (t_.size() == budget_) downsample();
    t_.push_back(t);
    for (auto& s : counters_) {
        const std::uint64_t now = s.fn();
        // Guard a non-monotonic source (reset mid-run): clamp to zero
        // rather than wrapping to a huge delta.
        s.v.push_back(now >= s.last ? now - s.last : 0);
        s.last = now;
    }
    for (auto& s : gauges_) s.v.push_back(s.fn());
    for (auto& s : hists_) {
        const Histogram& bins = s.h->bins();
        const RunningStats st = s.h->stats();
        HistWindow w;
        w.bins.resize(s.last_bins.size());
        for (std::size_t i = 0; i < w.bins.size(); ++i) {
            const std::uint64_t b = bins.bin(i);
            w.bins[i] = b - s.last_bins[i];
            s.last_bins[i] = b;
        }
        w.count = st.count() - s.last_count;
        w.sum = st.sum() - s.last_sum;
        w.nan_rejects = bins.nan_rejects() - s.last_nan;
        s.last_count = st.count();
        s.last_sum = st.sum();
        s.last_nan = bins.nan_rejects();
        s.v.push_back(std::move(w));
    }
}

void TimeSeries::downsample() {
    const std::size_t half = t_.size() / 2;
    for (std::size_t i = 0; i < half; ++i) t_[i] = t_[2 * i + 1];
    t_.resize(half);
    for (auto& s : counters_) {
        for (std::size_t i = 0; i < half; ++i) s.v[i] = s.v[2 * i] + s.v[2 * i + 1];
        s.v.resize(half);
    }
    for (auto& s : gauges_) {
        for (std::size_t i = 0; i < half; ++i)
            s.v[i] = (s.v[2 * i] + s.v[2 * i + 1]) / 2.0;
        s.v.resize(half);
    }
    for (auto& s : hists_) {
        for (std::size_t i = 0; i < half; ++i) {
            HistWindow merged = std::move(s.v[2 * i]);
            merged.merge(s.v[2 * i + 1]);
            s.v[i] = std::move(merged);
        }
        s.v.resize(half);
    }
    stride_ *= 2;
}

namespace {

template <typename Vec, typename Fn>
const typename Vec::value_type* find_series(const Vec& vec, const std::string& name,
                                            Fn name_of) {
    for (const auto& s : vec)
        if (name_of(s) == name) return &s;
    return nullptr;
}

}  // namespace

std::vector<std::string> TimeSeries::counter_names() const {
    std::vector<std::string> out;
    out.reserve(counters_.size());
    for (const auto& s : counters_) out.push_back(s.name);
    return out;
}

std::vector<std::string> TimeSeries::gauge_names() const {
    std::vector<std::string> out;
    out.reserve(gauges_.size());
    for (const auto& s : gauges_) out.push_back(s.name);
    return out;
}

std::vector<std::string> TimeSeries::histogram_names() const {
    std::vector<std::string> out;
    out.reserve(hists_.size());
    for (const auto& s : hists_) out.push_back(s.name);
    return out;
}

const std::vector<std::uint64_t>& TimeSeries::counter_series(
    const std::string& name) const {
    const auto* s =
        find_series(counters_, name, [](const CounterSeries& c) { return c.name; });
    WFQS_REQUIRE(s != nullptr, "no counter series named '" + name + "'");
    return s->v;
}

const std::vector<double>& TimeSeries::gauge_series(const std::string& name) const {
    const auto* s =
        find_series(gauges_, name, [](const GaugeSeries& g) { return g.name; });
    WFQS_REQUIRE(s != nullptr, "no gauge series named '" + name + "'");
    return s->v;
}

const std::vector<HistWindow>& TimeSeries::histogram_series(
    const std::string& name) const {
    const auto* s =
        find_series(hists_, name, [](const HistSeries& h) { return h.name; });
    WFQS_REQUIRE(s != nullptr, "no histogram series named '" + name + "'");
    return s->v;
}

void TimeSeries::write_json(JsonWriter& w) const {
    w.begin_object();
    w.field("budget", static_cast<std::uint64_t>(budget_));
    w.field("stride", static_cast<std::uint64_t>(stride_));
    w.field("windows", static_cast<std::uint64_t>(t_.size()));
    w.key("t").begin_array();
    for (const double t : t_) w.value(t);
    w.end_array();
    w.key("counters").begin_object();
    for (const auto& s : counters_) {
        w.key(s.name).begin_array();
        for (const std::uint64_t v : s.v) w.value(v);
        w.end_array();
    }
    w.end_object();
    w.key("gauges").begin_object();
    for (const auto& s : gauges_) {
        w.key(s.name).begin_array();
        for (const double v : s.v) w.value(v);
        w.end_array();
    }
    w.end_object();
    w.key("histograms").begin_object();
    for (const auto& s : hists_) {
        w.key(s.name).begin_object();
        w.field("lo", s.lo);
        w.field("hi", s.hi);
        const auto emit = [&](const char* key, auto fn) {
            w.key(key).begin_array();
            for (const HistWindow& win : s.v) w.value(fn(win));
            w.end_array();
        };
        emit("count", [](const HistWindow& win) { return win.count; });
        emit("mean", [](const HistWindow& win) { return win.mean(); });
        emit("p50", [&](const HistWindow& win) { return win.quantile(0.50, s.lo, s.hi); });
        emit("p99", [&](const HistWindow& win) { return win.quantile(0.99, s.lo, s.hi); });
        emit("nan_rejects", [](const HistWindow& win) { return win.nan_rejects; });
        w.end_object();
    }
    w.end_object();
    w.end_object();
}

}  // namespace wfqs::obs
