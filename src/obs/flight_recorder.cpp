#include "obs/flight_recorder.hpp"

#include <csignal>
#include <exception>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/assert.hpp"

namespace wfqs::obs {

FlightRecorder* FlightRecorder::current_ = nullptr;

const char* event_kind_name(FlightEventKind k) {
    switch (k) {
        case FlightEventKind::kInsert: return "insert";
        case FlightEventKind::kPop: return "pop";
        case FlightEventKind::kCombined: return "combined";
        case FlightEventKind::kFault: return "fault";
        case FlightEventKind::kScrub: return "scrub";
        case FlightEventKind::kRecovery: return "recovery";
        case FlightEventKind::kStall: return "stall";
        case FlightEventKind::kDivergence: return "divergence";
        case FlightEventKind::kReshard: return "reshard";
        case FlightEventKind::kNote: return "note";
    }
    return "unknown";
}

FlightRecorder::FlightRecorder(std::size_t capacity) : capacity_(capacity) {
    WFQS_REQUIRE(capacity > 0, "flight recorder needs a non-empty ring");
    ring_.reserve(capacity);
}

FlightRecorder::~FlightRecorder() {
    if (current_ == this) current_ = nullptr;
}

void FlightRecorder::record(FlightEventKind kind, double t, std::int64_t a,
                            std::int64_t b) {
    std::lock_guard<std::mutex> lock(mutex_);
    FlightEvent ev{seq_++, kind, t, a, b};
    if (ring_.size() < capacity_) {
        ring_.push_back(ev);
    } else {
        ring_[head_] = ev;
        head_ = (head_ + 1) % capacity_;
    }
}

std::size_t FlightRecorder::size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return ring_.size();
}

std::uint64_t FlightRecorder::total_recorded() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return seq_;
}

std::vector<FlightEvent> FlightRecorder::ordered_unlocked() const {
    std::vector<FlightEvent> out;
    out.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i)
        out.push_back(ring_[(head_ + i) % ring_.size()]);
    return out;
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return ordered_unlocked();
}

void FlightRecorder::dump_unlocked(std::ostream& os,
                                   const std::string& reason) const {
    os << "# wfqs-ops v1\n";
    os << "# flight-recorder dump\n";
    if (!reason.empty()) {
        std::istringstream lines(reason);
        std::string line;
        while (std::getline(lines, line)) os << "# " << line << "\n";
    }
    const std::vector<FlightEvent> events = ordered_unlocked();
    os << "# events " << events.size() << " of " << seq_
       << " recorded, capacity " << capacity_ << "\n";
    for (const FlightEvent& ev : events)
        os << "# ev " << ev.seq << " " << event_kind_name(ev.kind)
           << " t=" << ev.t << " a=" << ev.a << " b=" << ev.b << "\n";
    // Replayable tail: op events in ring order, `.ops` grammar.
    for (const FlightEvent& ev : events) {
        switch (ev.kind) {
            case FlightEventKind::kInsert: os << "i " << ev.a << "\n"; break;
            case FlightEventKind::kPop: os << "p\n"; break;
            case FlightEventKind::kCombined: os << "c " << ev.a << "\n"; break;
            default: break;
        }
    }
}

void FlightRecorder::dump(std::ostream& os, const std::string& reason) const {
    std::lock_guard<std::mutex> lock(mutex_);
    dump_unlocked(os, reason);
}

void FlightRecorder::dump_to_file(const std::string& path,
                                  const std::string& reason) const {
    std::ofstream out(path);
    WFQS_REQUIRE(static_cast<bool>(out),
                 "cannot write flight-recorder dump: " + path);
    dump(out, reason);
}

// ------------------------------------------------------- crash-dump hooks

namespace {

std::string g_crash_path;                      // set once by arm_crash_dump
std::terminate_handler g_prev_terminate = nullptr;
bool g_armed = false;

}  // namespace

void FlightRecorder::crash_dump() {
    // Fatal path: the mutex holder may be the thread that just died, so
    // read the ring without locking. A torn event in the dump beats a
    // handler that never returns.
    const FlightRecorder* r = current_;
    if (r == nullptr || g_crash_path.empty()) return;
    std::ofstream out(g_crash_path);
    if (!out) return;
    r->dump_unlocked(out, "crash dump (terminate/fatal signal)");
}

namespace {

[[noreturn]] void on_fatal_signal(int sig) {
    FlightRecorder::crash_dump();
    std::signal(sig, SIG_DFL);
    std::raise(sig);
    std::_Exit(128 + sig);  // unreachable unless raise is blocked
}

[[noreturn]] void on_terminate() {
    FlightRecorder::crash_dump();
    if (g_prev_terminate != nullptr) g_prev_terminate();
    std::abort();
}

}  // namespace

void FlightRecorder::arm_crash_dump(const std::string& path) {
    g_crash_path = path;
    if (g_armed) return;
    g_armed = true;
    g_prev_terminate = std::set_terminate(on_terminate);
    std::signal(SIGSEGV, on_fatal_signal);
    std::signal(SIGABRT, on_fatal_signal);
    std::signal(SIGFPE, on_fatal_signal);
}

}  // namespace wfqs::obs
