// Minimal streaming JSON writer for telemetry export (metrics snapshots,
// Chrome trace-event files). Deliberately tiny: objects, arrays, scalar
// values, automatic comma placement, RFC 8259 string escaping. Keys are
// emitted in the order given by the caller — MetricsRegistry sorts its
// metric names so exported snapshots diff cleanly run-to-run.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace wfqs::obs {

class JsonWriter {
public:
    explicit JsonWriter(std::ostream& os) : os_(os) {}

    JsonWriter& begin_object();
    JsonWriter& end_object();
    JsonWriter& begin_array();
    JsonWriter& end_array();

    /// Emit an object key; must be followed by a value or container open.
    JsonWriter& key(std::string_view k);

    JsonWriter& value(std::string_view v);
    JsonWriter& value(const char* v) { return value(std::string_view(v)); }
    JsonWriter& value(double v);  ///< NaN/Inf are not JSON: emitted as null
    JsonWriter& value(std::uint64_t v);
    JsonWriter& value(std::int64_t v);
    JsonWriter& value(bool v);
    JsonWriter& null();

    /// key + scalar in one call.
    template <typename T>
    JsonWriter& field(std::string_view k, const T& v) {
        key(k);
        return value(v);
    }

    static std::string escape(std::string_view s);

private:
    void pre_value();  ///< comma bookkeeping before any value/open

    enum class Ctx { Object, Array };
    std::ostream& os_;
    std::vector<Ctx> stack_;
    std::vector<bool> first_;
    bool after_key_ = false;
};

}  // namespace wfqs::obs
