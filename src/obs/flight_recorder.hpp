// FlightRecorder: a fixed-size ring of the last K structured events —
// sorter ops, faults, scrub outcomes, recoveries, pipeline stalls,
// conformance divergences — dumped as a post-mortem artifact when
// something goes wrong (fault escalation, divergence, crash).
//
// The dump is a *replayable* `.ops` file. Op events (insert/pop/combined,
// with the tag delta against the reference minimum captured at record
// time) are emitted as `i <delta>` / `p` / `c <delta>` lines in ring
// order, so `wfqs_fuzz --replay` re-executes the recorded tail directly.
// Every event — ops included — is also emitted as a
//
//   # ev <seq> <kind> t=<t> a=<a> b=<b>
//
// comment line, which `parse_ops` ignores but `wfqs_top --replay`
// renders as an annotated timeline. One file, two consumers.
//
// Installation is process-global, like obs::Tracer: components record
// through current() with a single pointer test when no recorder is
// installed. Recording takes an internal mutex so pipeline stage threads
// can share one ring. arm_crash_dump() registers std::terminate and
// fatal-signal hooks that write the ring before the process dies; the
// signal path skips the mutex (best effort beats a deadlocked handler).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace wfqs::obs {

enum class FlightEventKind : std::uint8_t {
    // Replayable sorter ops (a = tag delta vs the reference minimum).
    kInsert,
    kPop,
    kCombined,
    // Annotations (a/b are kind-specific, see event_kind_name()).
    kFault,       ///< injected/detected fault (a = bank or flow, b = detail)
    kScrub,       ///< scrub pass (a = ScrubAction, b = repaired count)
    kRecovery,    ///< recovery completed (a = 1-based retry attempt)
    kStall,       ///< pipeline stall episode (a = stage, b = ns waited)
    kDivergence,  ///< conformance divergence detected (a = op index)
    kReshard,     ///< online reshard step (a = 0 add / 1 fence / 2 detach /
                  ///<   3 rebalance trigger, b = bank index)
    kNote,        ///< free-form marker (a/b caller-defined)
};

const char* event_kind_name(FlightEventKind k);

struct FlightEvent {
    std::uint64_t seq = 0;  ///< monotonically increasing record index
    FlightEventKind kind = FlightEventKind::kNote;
    double t = 0.0;         ///< caller timebase (hw cycles or wall seconds)
    std::int64_t a = 0;
    std::int64_t b = 0;
};

class FlightRecorder {
public:
    explicit FlightRecorder(std::size_t capacity = 4096);
    ~FlightRecorder();

    FlightRecorder(const FlightRecorder&) = delete;
    FlightRecorder& operator=(const FlightRecorder&) = delete;

    /// Process-global current recorder (null = recording off). install(this)
    /// activates; the destructor deactivates if still current.
    static FlightRecorder* current() { return current_; }
    static void install(FlightRecorder* r) { current_ = r; }

    // -- recording ---------------------------------------------------------
    void record(FlightEventKind kind, double t, std::int64_t a = 0,
                std::int64_t b = 0);

    // -- inspection --------------------------------------------------------
    std::size_t capacity() const { return capacity_; }
    std::size_t size() const;
    std::uint64_t total_recorded() const;
    /// Ring contents, oldest first.
    std::vector<FlightEvent> snapshot() const;

    // -- post-mortem dump --------------------------------------------------
    /// Write the replayable `.ops` artifact described above. `reason`
    /// lines become leading `#` comments.
    void dump(std::ostream& os, const std::string& reason) const;
    void dump_to_file(const std::string& path, const std::string& reason) const;

    /// Arm process-death hooks (std::terminate, SIGSEGV/SIGABRT/SIGFPE):
    /// whatever recorder is current when the process dies is dumped to
    /// `path`. Call once; later calls just update the path.
    static void arm_crash_dump(const std::string& path);
    /// The death-hook dump path itself: no locking (the mutex holder may
    /// be the thread that died). Public for the signal handlers.
    static void crash_dump();

private:
    std::vector<FlightEvent> ordered_unlocked() const;
    void dump_unlocked(std::ostream& os, const std::string& reason) const;

    static FlightRecorder* current_;

    mutable std::mutex mutex_;
    std::size_t capacity_;
    std::vector<FlightEvent> ring_;  ///< grows to capacity_, then wraps
    std::size_t head_ = 0;           ///< next write slot once full
    std::uint64_t seq_ = 0;
};

/// Record against the installed recorder; one pointer test when none is.
inline void flight_record(FlightEventKind kind, double t, std::int64_t a = 0,
                          std::int64_t b = 0) {
    if (FlightRecorder* r = FlightRecorder::current()) r->record(kind, t, a, b);
}

}  // namespace wfqs::obs
