#include "obs/bench_io.hpp"

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <thread>

#include "common/assert.hpp"
#include "obs/json.hpp"
#include "obs/profiler.hpp"

namespace wfqs::obs {

namespace {

bool is_directory(const std::string& path) {
    struct stat st{};
    return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

std::string expand_dir(const std::string& raw, const std::string& bench_name) {
    if (raw.empty()) return raw;
    if (raw.back() == '/' || is_directory(raw)) {
        const std::string sep = raw.back() == '/' ? "" : "/";
        return raw + sep + "BENCH_" + bench_name + ".json";
    }
    return raw;
}

}  // namespace

std::optional<std::string> bench_json_path(const std::string& bench_name,
                                           int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
        const char* a = argv[i];
        if (std::strcmp(a, "--json") == 0) {
            // argv parsing in a CLI: report and exit instead of an
            // uncaught throw aborting through std::terminate.
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: --json needs a path argument\n",
                             argv[0]);
                std::exit(2);
            }
            return expand_dir(argv[i + 1], bench_name);
        }
        if (std::strncmp(a, "--json=", 7) == 0)
            return expand_dir(a + 7, bench_name);
    }
    if (const char* env = std::getenv("WFQS_METRICS_JSON"); env && *env)
        return expand_dir(env, bench_name);
    return std::nullopt;
}

std::optional<std::uint64_t> bench_seed_override(int argc, char** argv) {
    const auto parse = [&](const char* text) -> std::uint64_t {
        char* end = nullptr;
        const unsigned long long v = std::strtoull(text, &end, 10);
        if (end == text || *end != '\0') {
            std::fprintf(stderr, "%s: seed must be an unsigned integer, got '%s'\n",
                         argv[0], text);
            std::exit(2);
        }
        return v;
    };
    for (int i = 1; i < argc; ++i) {
        const char* a = argv[i];
        if (std::strcmp(a, "--seed") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: --seed needs a value argument\n", argv[0]);
                std::exit(2);
            }
            return parse(argv[i + 1]);
        }
        if (std::strncmp(a, "--seed=", 7) == 0) return parse(a + 7);
    }
    if (const char* env = std::getenv("WFQS_SEED"); env && *env) return parse(env);
    return std::nullopt;
}

unsigned bench_threads(int argc, char** argv) {
    const auto parse = [&](const char* text) -> unsigned {
        char* end = nullptr;
        const unsigned long long v = std::strtoull(text, &end, 10);
        if (end == text || *end != '\0' || v == 0 || v > 256) {
            std::fprintf(stderr,
                         "%s: --threads must be an integer in [1, 256], got '%s'\n",
                         argv[0], text);
            std::exit(2);
        }
        return static_cast<unsigned>(v);
    };
    for (int i = 1; i < argc; ++i) {
        const char* a = argv[i];
        if (std::strcmp(a, "--threads") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: --threads needs a value argument\n",
                             argv[0]);
                std::exit(2);
            }
            return parse(argv[i + 1]);
        }
        if (std::strncmp(a, "--threads=", 10) == 0) return parse(a + 10);
    }
    if (const char* env = std::getenv("WFQS_THREADS"); env && *env)
        return parse(env);
    return 1;
}

std::string bench_backend(int argc, char** argv) {
    const auto check = [&](const char* text) -> std::string {
        if (std::strcmp(text, "model") != 0 && std::strcmp(text, "ffs") != 0) {
            std::fprintf(stderr, "%s: --backend must be 'model' or 'ffs', got '%s'\n",
                         argv[0], text);
            std::exit(2);
        }
        return text;
    };
    for (int i = 1; i < argc; ++i) {
        const char* a = argv[i];
        if (std::strcmp(a, "--backend") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: --backend needs a value argument\n",
                             argv[0]);
                std::exit(2);
            }
            return check(argv[i + 1]);
        }
        if (std::strncmp(a, "--backend=", 10) == 0) return check(a + 10);
    }
    if (const char* env = std::getenv("WFQS_BACKEND"); env && *env)
        return check(env);
    return "model";
}

bool bench_timeseries(int argc, char** argv) {
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--timeseries") == 0) return true;
    if (const char* env = std::getenv("WFQS_TIMESERIES"); env && *env)
        return std::strcmp(env, "0") != 0;
    return false;
}

std::optional<std::string> bench_live_path(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
        const char* a = argv[i];
        if (std::strcmp(a, "--live") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: --live needs a path argument\n", argv[0]);
                std::exit(2);
            }
            return std::string(argv[i + 1]);
        }
        if (std::strncmp(a, "--live=", 7) == 0) return std::string(a + 7);
    }
    if (const char* env = std::getenv("WFQS_LIVE"); env && *env)
        return std::string(env);
    return std::nullopt;
}

void write_bench_json(const MetricsRegistry& registry,
                      const std::string& bench_name, const std::string& path,
                      std::optional<std::uint64_t> seed) {
    std::ofstream os(path);
    WFQS_REQUIRE(os.good(), "cannot open metrics output file '" + path + "'");
    JsonWriter w(os);
    w.begin_object();
    w.field("bench", bench_name);
    w.field("schema", std::uint64_t{1});
    if (seed) w.field("seed", *seed);
    w.key("metrics");
    registry.write_json(w);
    w.end_object();
    os << '\n';
}

void BenchReporter::finish() {
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                  host_start_)
            .count();
    registry_.gauge("host.elapsed_ms").set(elapsed_ms);
    // Machine context for the host.* gauges: speedup gates in perf_smoke
    // only apply when the recording machine had the cores to show one.
    registry_.gauge("host.hardware_concurrency")
        .set(static_cast<double>(std::thread::hardware_concurrency()));
    if (host_ops_ > 0) {
        const double ops_per_sec =
            elapsed_ms > 0.0 ? static_cast<double>(host_ops_) * 1000.0 / elapsed_ms
                             : 0.0;
        registry_.gauge("host.ops_per_sec").set(ops_per_sec);
        std::printf("[host] %llu ops in %.1f ms = %.0f ops/s\n",
                    static_cast<unsigned long long>(host_ops_), elapsed_ms,
                    ops_per_sec);
    }
    if (timeseries_ && series_.window_count() == 0) {
        // Whole-run fallback window: benches without a natural time axis
        // still export a uniformly-shaped timeseries section.
        if (series_.counter_names().empty())
            for (const auto& [cname, v] : registry_.counter_values()) {
                (void)v;
                const std::string probe = cname;
                const MetricsRegistry* reg = &registry_;
                series_.add_counter(
                    probe, [reg, probe] { return reg->counter_values()[probe]; });
            }
        series_.tick(elapsed_ms / 1000.0);
    }
    if (!path_) return;
    try {
        std::ofstream os(*path_);
        WFQS_REQUIRE(os.good(), "cannot open metrics output file '" + *path_ + "'");
        JsonWriter w(os);
        w.begin_object();
        w.field("bench", name_);
        w.field("schema", std::uint64_t{1});
        if (seed_) w.field("seed", *seed_);
        if (!backend_.empty()) w.field("backend", backend_);
        w.key("metrics");
        registry_.write_json(w);
        if (timeseries_) {
            w.key("timeseries");
            series_.write_json(w);
            if (profiler_) {
                w.key("host_profile");
                profiler_->write_json(w);
            }
        }
        w.end_object();
        os << '\n';
    } catch (const std::exception& e) {
        std::fprintf(stderr, "[metrics] export failed: %s\n", e.what());
        std::exit(2);
    }
    std::printf("[metrics] wrote %s (%zu metrics)\n", path_->c_str(),
                registry_.size());
}

}  // namespace wfqs::obs
