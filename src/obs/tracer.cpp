#include "obs/tracer.hpp"

#include <chrono>
#include <fstream>
#include <sstream>

#include "common/assert.hpp"
#include "hw/clock.hpp"
#include "obs/json.hpp"

namespace wfqs::obs {

Tracer* Tracer::current_ = nullptr;

Tracer::~Tracer() {
    if (current_ == this) current_ = nullptr;
}

std::uint64_t Tracer::now_cycles() const { return clock_ ? clock_->now() : 0; }

std::uint64_t Tracer::wall_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

void Tracer::begin_span(const char* name, const char* category) {
    std::lock_guard<std::mutex> lock(mutex_);
    open_.push_back(OpenSpan{name, category,
                             clock_ ? clock_->now() : wall_ns() / 1000,
                             wall_ns()});
}

void Tracer::end_span() {
    std::lock_guard<std::mutex> lock(mutex_);
    WFQS_ASSERT_MSG(!open_.empty(), "Tracer::end_span with no open span");
    const OpenSpan s = open_.back();
    open_.pop_back();
    const std::uint64_t end_cycle = clock_ ? clock_->now() : wall_ns() / 1000;
    events_.push_back(Event{s.name, s.category, 'X',
                            static_cast<double>(s.begin_cycle),
                            static_cast<double>(end_cycle - s.begin_cycle),
                            s.begin_wall_ns, wall_ns() - s.begin_wall_ns, 0.0});
}

void Tracer::instant(const char* name, const char* category, double ts_us) {
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(Event{name, category, 'i', ts_us, 0.0, wall_ns(), 0, 0.0});
}

void Tracer::counter(const char* name, double ts_us, double value) {
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(Event{name, "counter", 'C', ts_us, 0.0, wall_ns(), 0, value});
}

void Tracer::clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
    open_.clear();
}

void Tracer::write_json(std::ostream& os) {
    while (open_spans() != 0) end_span();
    std::lock_guard<std::mutex> lock(mutex_);
    JsonWriter w(os);
    w.begin_object();
    w.key("traceEvents").begin_array();
    for (const Event& e : events_) {
        w.begin_object();
        w.field("name", e.name);
        w.field("cat", e.category);
        w.field("ph", std::string(1, e.phase));
        w.field("ts", e.ts_us);
        if (e.phase == 'X') w.field("dur", e.dur_us);
        w.field("pid", std::uint64_t{1});
        w.field("tid", std::uint64_t{1});
        w.key("args").begin_object();
        if (e.phase == 'X') {
            w.field("wall_ns", e.wall_ns);
            w.field("wall_dur_ns", e.wall_dur_ns);
        } else if (e.phase == 'C') {
            w.field("value", e.value);
        }
        w.end_object();
        w.end_object();
    }
    // Name the process track after the timebase so the viewer reads
    // "1 trace-us = 1 clock cycle" without guessing.
    w.begin_object();
    w.field("name", "process_name");
    w.field("ph", "M");
    w.field("pid", std::uint64_t{1});
    w.key("args").begin_object();
    w.field("name", clock_ ? "circuit (1us = 1 cycle)" : "host (wall time)");
    w.end_object();
    w.end_object();
    w.end_array();
    w.field("displayTimeUnit", "ns");
    w.end_object();
}

std::string Tracer::to_json() {
    std::ostringstream os;
    write_json(os);
    return os.str();
}

void Tracer::save(const std::string& path) {
    std::ofstream os(path);
    WFQS_REQUIRE(os.good(), "cannot open trace output file '" + path + "'");
    write_json(os);
}

}  // namespace wfqs::obs
