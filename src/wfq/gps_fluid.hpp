// Exact event-driven Generalized Processor Sharing (GPS) fluid simulator.
//
// GPS is the ideal scheduler every fair-queueing algorithm emulates
// (§II-A): all backlogged flows are served simultaneously, each at rate
// r·φ_i/Φ(t). This reference produces, for every packet, both the
// *virtual* finish time (the WFQ finishing tag, paper eq. (1) context)
// and the *real* time at which GPS would complete the packet — the ground
// truth for the delay-bound and fairness experiments (WFQ must finish
// every packet within one maximum packet time of GPS).
//
// Analysis-side component: runs in double precision, not part of the
// simulated hardware datapath.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

namespace wfqs::wfq {

class GpsFluidSim {
public:
    /// `rate_bps`: the output link capacity being shared.
    explicit GpsFluidSim(double rate_bps);

    /// Register a flow with the given weight (> 0).
    int add_flow(double weight);

    /// Feed an arrival; arrivals must be in non-decreasing real time.
    /// Returns the packet id (sequential from 0).
    int arrive(int flow, double time_s, double size_bits);

    /// Virtual finish time assigned to a packet (valid right after its
    /// arrival call).
    double virtual_finish(int packet) const { return packets_[packet].vfinish; }

    struct Departure {
        int packet;
        int flow;
        double finish_time;    ///< real time GPS completes the packet
        double virtual_finish;
    };

    /// Drain all remaining work and return every departure in completion
    /// order. The simulator can keep accepting arrivals afterwards.
    std::vector<Departure> drain();

    double virtual_time() const { return v_; }
    double now() const { return t_; }

private:
    struct PendingPacket {
        double vfinish;
        int packet;
        int flow;
        bool operator>(const PendingPacket& o) const { return vfinish > o.vfinish; }
    };
    struct Flow {
        double weight;
        double last_vfinish = 0.0;  ///< virtual finish of the flow's newest packet
        bool busy = false;
    };
    struct Packet {
        int flow;
        double vfinish;
    };

    /// Advance real and virtual time to `t`, emitting any departures on
    /// the way.
    void advance_to(double t);

    double rate_;
    double v_ = 0.0;  ///< virtual time (units: bits per unit weight)
    double t_ = 0.0;  ///< real time (seconds)
    double busy_weight_ = 0.0;
    std::vector<Flow> flows_;
    std::vector<Packet> packets_;
    std::priority_queue<PendingPacket, std::vector<PendingPacket>,
                        std::greater<PendingPacket>>
        pending_;
    std::vector<Departure> departures_;
};

}  // namespace wfqs::wfq
