#include "wfq/tag_computer.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace wfqs::wfq {

void TagComputer::on_service_start(Fixed /*tag*/, TimeNs /*now*/) {}

// ---------------------------------------------------------------- WF2Q+

Wf2qPlusTagComputer::Wf2qPlusTagComputer(std::uint64_t rate_bps) : rate_(rate_bps) {
    WFQS_REQUIRE(rate_bps > 0, "link rate must be positive");
}

FlowId Wf2qPlusTagComputer::add_flow(std::uint32_t weight) {
    WFQS_REQUIRE(weight > 0, "flow weight must be positive");
    flows_.push_back(Flow{weight, Fixed{}});
    total_weight_ += weight;
    return static_cast<FlowId>(flows_.size() - 1);
}

void Wf2qPlusTagComputer::advance_to(TimeNs now) {
    WFQS_ASSERT(now >= last_event_);
    // WF2Q+ system virtual time: advance with normalized elapsed work.
    // V grows at rate r/Φ_total while the server is busy; the start-tag
    // floor is applied at service events.
    if (now > last_event_ && total_weight_ > 0) {
        const unsigned __int128 add =
            ((static_cast<unsigned __int128>(now - last_event_) * rate_)
             << Fixed::kFracBits) /
            (static_cast<unsigned __int128>(total_weight_) * 1'000'000'000ULL);
        v_ = Fixed::from_raw(v_.raw() + static_cast<std::uint64_t>(add));
    }
    last_event_ = now;
}

void Wf2qPlusTagComputer::floor_virtual_time(Fixed v) {
    if (v > v_) v_ = v;
}

Fixed Wf2qPlusTagComputer::on_arrival(FlowId flow, TimeNs now, std::uint32_t size_bits) {
    WFQS_REQUIRE(flow < flows_.size(), "unknown flow");
    advance_to(now);

    Flow& f = flows_[flow];
    const Fixed start = max(v_, f.last_finish);
    const Fixed finish = start + Fixed::ratio(size_bits, f.weight);
    f.last_finish = finish;
    last_start_ = start;
    return finish;
}

void Wf2qPlusTagComputer::on_service_start(Fixed tag, TimeNs now) {
    // The served packet's tag floors the system virtual time (the
    // "max(V, min S)" update collapsed onto the dispatch event).
    advance_to(now);
    floor_virtual_time(tag);
}

// ----------------------------------------------------------------- SCFQ

FlowId ScfqTagComputer::add_flow(std::uint32_t weight) {
    WFQS_REQUIRE(weight > 0, "flow weight must be positive");
    flows_.push_back(Flow{weight, Fixed{}});
    return static_cast<FlowId>(flows_.size() - 1);
}

Fixed ScfqTagComputer::on_arrival(FlowId flow, TimeNs /*now*/,
                                  std::uint32_t size_bits) {
    WFQS_REQUIRE(flow < flows_.size(), "unknown flow");
    Flow& f = flows_[flow];
    const Fixed start = max(v_, f.last_finish);
    const Fixed finish = start + Fixed::ratio(size_bits, f.weight);
    f.last_finish = finish;
    return finish;
}

// ----------------------------------------------------------------- FBFQ

FbfqTagComputer::FbfqTagComputer(std::uint64_t rate_bps, std::uint32_t frame_bits)
    : rate_(rate_bps), frame_bits_(frame_bits) {
    WFQS_REQUIRE(rate_bps > 0, "link rate must be positive");
    WFQS_REQUIRE(frame_bits > 0, "frame must be positive");
}

FlowId FbfqTagComputer::add_flow(std::uint32_t weight) {
    WFQS_REQUIRE(weight > 0, "flow weight must be positive");
    flows_.push_back(Flow{weight, Fixed{}});
    total_weight_ += weight;
    return static_cast<FlowId>(flows_.size() - 1);
}

void FbfqTagComputer::advance_frames(TimeNs now) {
    // One frame = frame_bits of link service; real frame duration
    // frame_bits / rate. Between boundaries V advances linearly (cheap);
    // at every completed boundary it is recalibrated against the service
    // point — the tag most recently dispatched — so the linear clock can
    // never fall a whole frame behind the real schedule. This is the
    // once-per-frame resynchronisation that makes FBFQ "less complex
    // than WFQ, but almost as fair" (ref [7]).
    const TimeNs frame_ns =
        static_cast<TimeNs>(frame_bits_) * 1'000'000'000ULL / rate_;
    while (now >= frame_start_ + frame_ns) {
        frame_start_ += frame_ns;
        if (total_weight_ > 0)
            v_ += Fixed::ratio(frame_bits_, total_weight_);
        if (have_floor_ && frame_floor_ > v_) v_ = frame_floor_;
        have_floor_ = false;
    }
}

Fixed FbfqTagComputer::on_arrival(FlowId flow, TimeNs now, std::uint32_t size_bits) {
    WFQS_REQUIRE(flow < flows_.size(), "unknown flow");
    advance_frames(now);
    Flow& f = flows_[flow];
    const Fixed start = max(v_, f.last_finish);
    const Fixed finish = start + Fixed::ratio(size_bits, f.weight);
    f.last_finish = finish;
    return finish;
}

void FbfqTagComputer::on_service_start(Fixed tag, TimeNs now) {
    advance_frames(now);
    // Remember the service point; the next frame boundary floors V by it.
    if (!have_floor_ || tag > frame_floor_) {
        frame_floor_ = tag;
        have_floor_ = true;
    }
}

// ------------------------------------------------------------ quantizer

TagQuantizer::TagQuantizer(int granularity_bits)
    : shift_(static_cast<unsigned>(static_cast<int>(Fixed::kFracBits) -
                                   granularity_bits)) {
    WFQS_REQUIRE(granularity_bits <= static_cast<int>(Fixed::kFracBits) &&
                     granularity_bits > static_cast<int>(Fixed::kFracBits) - 64,
                 "granularity must keep the shift within the 64-bit word");
}

std::uint64_t TagQuantizer::quantize(Fixed virtual_finish) const {
    if (shift_ == 0) return virtual_finish.raw();
    return virtual_finish.raw() >> shift_;
}

Fixed TagQuantizer::dequantize(std::uint64_t tag) const {
    return Fixed::from_raw(tag << shift_);
}

double TagQuantizer::tag_step_virtual() const {
    return std::ldexp(1.0, static_cast<int>(shift_)) /
           std::ldexp(1.0, static_cast<int>(Fixed::kFracBits));
}

// -------------------------------------------------------------- factory

std::unique_ptr<TagComputer> make_tag_computer(FairQueueingKind kind,
                                               std::uint64_t rate_bps) {
    switch (kind) {
        case FairQueueingKind::Wfq:
            return std::make_unique<WfqTagComputer>(rate_bps);
        case FairQueueingKind::Wf2qPlus:
            return std::make_unique<Wf2qPlusTagComputer>(rate_bps);
        case FairQueueingKind::Scfq:
            return std::make_unique<ScfqTagComputer>(rate_bps);
        case FairQueueingKind::Fbfq:
            return std::make_unique<FbfqTagComputer>(rate_bps);
    }
    WFQS_ASSERT_MSG(false, "unknown fair queueing kind");
    return nullptr;
}

const std::vector<FairQueueingKind>& all_fair_queueing_kinds() {
    static const std::vector<FairQueueingKind> kinds = {
        FairQueueingKind::Wfq, FairQueueingKind::Wf2qPlus,
        FairQueueingKind::Scfq, FairQueueingKind::Fbfq};
    return kinds;
}

}  // namespace wfqs::wfq
