#include "wfq/virtual_clock.hpp"

#include <limits>

#include "common/assert.hpp"

namespace wfqs::wfq {
namespace {

constexpr std::uint64_t kNsPerSec = 1'000'000'000ULL;

/// ΔV for a real-time interval: dt_ns · r / (Φ · 1e9), exact in 128 bits.
Fixed dv_for(TimeNs dt_ns, std::uint64_t rate, std::uint64_t phi) {
    WFQS_ASSERT(phi > 0);
    unsigned __int128 num = static_cast<unsigned __int128>(dt_ns) * rate;
    num <<= Fixed::kFracBits;
    num /= static_cast<unsigned __int128>(phi) * kNsPerSec;
    WFQS_ASSERT_MSG(num <= std::numeric_limits<std::uint64_t>::max(),
                    "virtual time advance overflow");
    return Fixed::from_raw(static_cast<std::uint64_t>(num));
}

/// Real nanoseconds for a virtual-time interval: dv · Φ · 1e9 / r.
TimeNs ns_for(Fixed dv, std::uint64_t phi, std::uint64_t rate) {
    WFQS_ASSERT(rate > 0);
    unsigned __int128 num = static_cast<unsigned __int128>(dv.raw()) * phi;
    num *= kNsPerSec;
    num /= static_cast<unsigned __int128>(rate) << Fixed::kFracBits;
    WFQS_ASSERT_MSG(num <= std::numeric_limits<std::uint64_t>::max(),
                    "departure time overflow");
    return static_cast<TimeNs>(num);
}

}  // namespace

WfqVirtualTime::WfqVirtualTime(std::uint64_t rate_bps) : rate_(rate_bps) {
    WFQS_REQUIRE(rate_bps > 0, "link rate must be positive");
}

FlowId WfqVirtualTime::add_flow(std::uint32_t weight) {
    WFQS_REQUIRE(weight > 0, "flow weight must be positive");
    flows_.push_back(Flow{weight, Fixed{}, false});
    return static_cast<FlowId>(flows_.size() - 1);
}

void WfqVirtualTime::advance_to(TimeNs now) {
    WFQS_ASSERT_MSG(now >= t_, "time must be non-decreasing");
    while (true) {
        // Discard stale idle events (the flow received more packets since).
        while (!idle_events_.empty()) {
            const IdleEvent& e = idle_events_.top();
            const Flow& f = flows_[e.flow];
            if (!f.busy || f.last_finish != e.at_virtual) {
                idle_events_.pop();
                continue;
            }
            break;
        }
        if (busy_weight_ == 0 || idle_events_.empty()) break;

        const IdleEvent e = idle_events_.top();
        const TimeNs cross = t_ + ns_for(e.at_virtual - v_, busy_weight_, rate_);
        if (cross > now) break;
        // The flow's backlog drains at virtual time e.at_virtual.
        idle_events_.pop();
        v_ = e.at_virtual;
        t_ = cross;
        Flow& f = flows_[e.flow];
        f.busy = false;
        WFQS_ASSERT(busy_weight_ >= f.weight);
        busy_weight_ -= f.weight;
    }
    if (busy_weight_ > 0 && now > t_) v_ += dv_for(now - t_, rate_, busy_weight_);
    t_ = now;
}

Fixed WfqVirtualTime::on_arrival(FlowId flow, TimeNs now, std::uint32_t size_bits) {
    WFQS_REQUIRE(flow < flows_.size(), "unknown flow");
    WFQS_REQUIRE(size_bits > 0, "packet must have positive size");
    advance_to(now);
    Flow& f = flows_[flow];
    // Textbook WFQ: S = max(V, F_prev). (For an idle flow F_prev ≤ V by
    // construction, so no special case is needed.)
    const Fixed start = max(v_, f.last_finish);
    const Fixed finish = start + Fixed::ratio(size_bits, f.weight);
    f.last_finish = finish;
    if (!f.busy) {
        f.busy = true;
        busy_weight_ += f.weight;
    }
    idle_events_.push(IdleEvent{finish, flow});
    last_start_ = start;
    return finish;
}

TimeNs WfqVirtualTime::eq1_next_departure(Fixed m_min, TimeNs now) {
    advance_to(now);
    if (busy_weight_ == 0 || m_min <= v_) return now;
    return now + ns_for(m_min - v_, busy_weight_, rate_);
}

}  // namespace wfqs::wfq
