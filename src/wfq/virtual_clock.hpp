// Fixed-point WFQ virtual-time tracker — the model of the paper's WFQ tag
// computation circuit (ref [8], Fig. 1 left block).
//
// Tracks the GPS virtual time V(t) with the classic iterated-deletion
// algorithm, in Q32.32 fixed point (the hardware representation feeding
// the tag quantizer). Real time is integer nanoseconds. Exposes the
// paper's eq. (1):
//
//     t_next = t + (M_min − V(t)) · Φ / r
//
// — the real time of the next scheduled departure, computed from the
// minimum time stamp M_min still in the sort/retrieve circuit. This is
// the feedback path that makes the sorter "integral to the operation of
// the entire scheduler" (§II-A).
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "common/fixed_point.hpp"

namespace wfqs::wfq {

using FlowId = std::uint32_t;
using TimeNs = std::uint64_t;

class WfqVirtualTime {
public:
    /// `rate_bps`: output link rate shared by the flows.
    explicit WfqVirtualTime(std::uint64_t rate_bps);

    FlowId add_flow(std::uint32_t weight);
    std::size_t flow_count() const { return flows_.size(); }
    std::uint32_t weight(FlowId flow) const { return flows_.at(flow).weight; }

    /// Advance V(t) to real time `now` (must be non-decreasing).
    void advance_to(TimeNs now);

    /// Process an arrival: advances V, computes the packet's virtual
    /// start S = max(V, F_prev) and finish F = S + L/φ, and returns F.
    Fixed on_arrival(FlowId flow, TimeNs now, std::uint32_t size_bits);

    /// Virtual start of the most recent arrival (needed by WF2Q-family
    /// eligibility tests).
    Fixed last_start() const { return last_start_; }

    /// Paper eq. (1): real time at which the tag `m_min` (the smallest
    /// stamp in the sorter) departs, given the current busy set. Returns
    /// `now` when the system is idle or m_min is already past.
    TimeNs eq1_next_departure(Fixed m_min, TimeNs now);

    Fixed virtual_time() const { return v_; }
    std::uint64_t busy_weight() const { return busy_weight_; }

private:
    struct Flow {
        std::uint32_t weight;
        Fixed last_finish;  ///< F of the flow's newest packet
        bool busy = false;
    };
    struct IdleEvent {
        Fixed at_virtual;
        FlowId flow;
        bool operator>(const IdleEvent& o) const { return at_virtual > o.at_virtual; }
    };

    std::uint64_t rate_;
    Fixed v_;
    TimeNs t_ = 0;
    std::uint64_t busy_weight_ = 0;
    Fixed last_start_;
    std::vector<Flow> flows_;
    std::priority_queue<IdleEvent, std::vector<IdleEvent>, std::greater<IdleEvent>>
        idle_events_;
};

}  // namespace wfqs::wfq
