#include "wfq/gps_fluid.hpp"

#include <algorithm>
#include <limits>

#include "common/assert.hpp"

namespace wfqs::wfq {

GpsFluidSim::GpsFluidSim(double rate_bps) : rate_(rate_bps) {
    WFQS_REQUIRE(rate_bps > 0.0, "GPS link rate must be positive");
}

int GpsFluidSim::add_flow(double weight) {
    WFQS_REQUIRE(weight > 0.0, "GPS flow weight must be positive");
    flows_.push_back(Flow{weight});
    return static_cast<int>(flows_.size() - 1);
}

void GpsFluidSim::advance_to(double t) {
    WFQS_ASSERT_MSG(t >= t_, "GPS arrivals must be fed in time order");
    while (!pending_.empty() && busy_weight_ > 0.0) {
        const PendingPacket next = pending_.top();
        // Real time at which virtual time reaches the next finish value.
        const double dt = (next.vfinish - v_) * busy_weight_ / rate_;
        const double cross = t_ + std::max(dt, 0.0);
        if (cross > t) break;
        // Packet completes.
        pending_.pop();
        t_ = cross;
        v_ = next.vfinish;
        departures_.push_back(Departure{next.packet, next.flow, cross, next.vfinish});
        Flow& f = flows_[next.flow];
        if (f.busy && f.last_vfinish <= v_) {
            f.busy = false;
            busy_weight_ -= f.weight;
            if (busy_weight_ < 1e-12) busy_weight_ = 0.0;
        }
    }
    if (busy_weight_ > 0.0) v_ += (t - t_) * rate_ / busy_weight_;
    t_ = t;
}

int GpsFluidSim::arrive(int flow, double time_s, double size_bits) {
    WFQS_REQUIRE(flow >= 0 && flow < static_cast<int>(flows_.size()),
                 "unknown GPS flow");
    WFQS_REQUIRE(size_bits > 0.0, "packet must have positive size");
    advance_to(time_s);
    Flow& f = flows_[flow];
    const double start = std::max(v_, f.last_vfinish);
    const double finish = start + size_bits / f.weight;
    f.last_vfinish = finish;
    if (!f.busy) {
        f.busy = true;
        busy_weight_ += f.weight;
    }
    const int id = static_cast<int>(packets_.size());
    packets_.push_back(Packet{flow, finish});
    pending_.push(PendingPacket{finish, id, flow});
    return id;
}

std::vector<GpsFluidSim::Departure> GpsFluidSim::drain() {
    while (!pending_.empty()) {
        WFQS_ASSERT(busy_weight_ > 0.0);
        const double dt = (pending_.top().vfinish - v_) * busy_weight_ / rate_;
        advance_to(t_ + std::max(dt, 0.0));
    }
    return std::move(departures_);
}

}  // namespace wfqs::wfq
