// Finishing-tag computation for the fair-queueing family.
//
// The sorter architecture is algorithm-agnostic (§II: "the tag sorting
// architecture ... can operate with any of the family of fair queueing
// algorithms that requires finishing tag timestamps to be sorted"). This
// module provides three members of that family behind one interface:
//
//   WFQ    — virtual time tracks simulated GPS (Demers/Parekh-Gallager).
//   WF2Q+  — lower-complexity system virtual time with start-time floor
//            (Bennett & Zhang [6]); fairer worst-case than WFQ.
//   SCFQ   — self-clocked: V is the tag of the packet in service
//            (simplest hardware, looser delay bound).
//   FBFQ   — frame-based fair queueing (Stidialis & Varma [7]): the
//            virtual clock advances in frames recalibrated at frame
//            boundaries; "less complex than WFQ, but almost as fair".
//
// plus the TagQuantizer that maps fixed-point virtual finish times onto
// the sorter's W-bit tag space (rounding here is what creates the
// duplicate tag values of §III-C/D).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/fixed_point.hpp"
#include "wfq/virtual_clock.hpp"

namespace wfqs::wfq {

class TagComputer {
public:
    virtual ~TagComputer() = default;

    virtual FlowId add_flow(std::uint32_t weight) = 0;

    /// Compute the finishing tag for a packet of `size_bits` arriving on
    /// `flow` at real time `now` (non-decreasing).
    virtual Fixed on_arrival(FlowId flow, TimeNs now, std::uint32_t size_bits) = 0;

    /// Hook invoked when the scheduler starts serving a packet (needed by
    /// the self-clocked variant; default no-op).
    virtual void on_service_start(Fixed tag, TimeNs now);

    virtual Fixed virtual_time() const = 0;
    virtual std::string name() const = 0;
};

/// WFQ per the paper's scheduler: exact GPS virtual-time emulation.
class WfqTagComputer final : public TagComputer {
public:
    explicit WfqTagComputer(std::uint64_t rate_bps) : clock_(rate_bps) {}

    FlowId add_flow(std::uint32_t weight) override { return clock_.add_flow(weight); }
    Fixed on_arrival(FlowId flow, TimeNs now, std::uint32_t size_bits) override {
        return clock_.on_arrival(flow, now, size_bits);
    }
    Fixed virtual_time() const override { return clock_.virtual_time(); }
    std::string name() const override { return "WFQ"; }

    /// Access to eq. (1) and the underlying virtual clock.
    WfqVirtualTime& clock() { return clock_; }

private:
    WfqVirtualTime clock_;
};

/// WF2Q+ (Bennett & Zhang): V(t) advances with served work and is floored
/// by the minimum start tag of queued head packets; here realised with
/// the standard simplified update V = max(V + L/Φ_total?, min S). We use
/// the common implementation V = max(V_prev, min start among backlogged
/// heads) advanced by served work over the aggregate rate.
class Wf2qPlusTagComputer final : public TagComputer {
public:
    explicit Wf2qPlusTagComputer(std::uint64_t rate_bps);

    FlowId add_flow(std::uint32_t weight) override;
    Fixed on_arrival(FlowId flow, TimeNs now, std::uint32_t size_bits) override;
    void on_service_start(Fixed tag, TimeNs now) override;
    Fixed virtual_time() const override { return v_; }
    std::string name() const override { return "WF2Q+"; }

    /// Advance the system virtual time to `now` (elapsed-work term).
    void advance_to(TimeNs now);

    /// Floor the system virtual time (the WF2Q+ "max(·, min start)" rule,
    /// applied by the eligibility scheduler when it would otherwise idle).
    void floor_virtual_time(Fixed v);

    /// Virtual start of the most recent arrival (eligibility tests).
    Fixed last_start() const { return last_start_; }

private:
    struct Flow {
        std::uint32_t weight;
        Fixed last_finish;
    };
    std::uint64_t rate_;
    std::uint64_t total_weight_ = 0;
    Fixed v_;
    Fixed last_start_;
    TimeNs last_event_ = 0;
    std::vector<Flow> flows_;
};

/// SCFQ (self-clocked fair queueing): the virtual time is simply the
/// finishing tag of the packet currently in service.
class ScfqTagComputer final : public TagComputer {
public:
    explicit ScfqTagComputer(std::uint64_t /*rate_bps*/) {}

    FlowId add_flow(std::uint32_t weight) override;
    Fixed on_arrival(FlowId flow, TimeNs now, std::uint32_t size_bits) override;
    void on_service_start(Fixed tag, TimeNs now) override { v_ = tag; (void)now; }
    Fixed virtual_time() const override { return v_; }
    std::string name() const override { return "SCFQ"; }

private:
    struct Flow {
        std::uint32_t weight;
        Fixed last_finish;
    };
    Fixed v_;
    std::vector<Flow> flows_;
};

/// FBFQ (frame-based fair queueing): virtual time advances linearly with
/// real time inside a frame and is recalibrated to the smallest pending
/// start tag at every frame boundary — a cheap piecewise approximation of
/// the GPS clock.
class FbfqTagComputer final : public TagComputer {
public:
    /// `frame_bits`: amount of service per frame (default: one maximum
    /// packet, 12 kbit).
    explicit FbfqTagComputer(std::uint64_t rate_bps, std::uint32_t frame_bits = 12000);

    FlowId add_flow(std::uint32_t weight) override;
    Fixed on_arrival(FlowId flow, TimeNs now, std::uint32_t size_bits) override;
    void on_service_start(Fixed tag, TimeNs now) override;
    Fixed virtual_time() const override { return v_; }
    std::string name() const override { return "FBFQ"; }

private:
    void advance_frames(TimeNs now);

    struct Flow {
        std::uint32_t weight;
        Fixed last_finish;
    };
    std::uint64_t rate_;
    std::uint32_t frame_bits_;
    std::uint64_t total_weight_ = 0;
    Fixed v_;
    Fixed frame_floor_;      ///< service point observed this frame
    bool have_floor_ = false;
    TimeNs frame_start_ = 0;
    std::vector<Flow> flows_;
};

/// Maps fixed-point virtual finish times onto the sorter's integer tag
/// space: tag = floor(F · 2^granularity). Positive granularity keeps
/// fractional virtual-time bits; *negative* granularity makes one tag
/// step cover 2^-g virtual-time units — the knob that trades timestamp
/// precision against the tag-window span (§III-D rounding: coarser steps
/// produce more duplicate tags but let a small tag word cover a large
/// scheduling horizon, which is how a 12-bit sorter serves a deep
/// buffer).
class TagQuantizer {
public:
    explicit TagQuantizer(int granularity_bits = 0);

    std::uint64_t quantize(Fixed virtual_finish) const;

    /// Invert a quantized tag back to the virtual-time domain (the lower
    /// edge of its step).
    Fixed dequantize(std::uint64_t tag) const;

    /// The virtual-time span covered by one tag step.
    double tag_step_virtual() const;

private:
    unsigned shift_;  ///< kFracBits - granularity
};

/// Factory over the three algorithms, for parameterized experiments.
enum class FairQueueingKind { Wfq, Wf2qPlus, Scfq, Fbfq };
std::unique_ptr<TagComputer> make_tag_computer(FairQueueingKind kind,
                                               std::uint64_t rate_bps);
const std::vector<FairQueueingKind>& all_fair_queueing_kinds();

}  // namespace wfqs::wfq
