// Synthetic traffic sources for the evaluation workloads.
//
// The paper's Fig. 6 discussion names the profiles we need: "streaming
// VoIP is likely to produce a distribution weighted to the left, while a
// diverse mix of traffic will have a classic bell curve", and §IV sizes
// the line-rate claim around 140-byte average packets. The generators
// here synthesize those mixes deterministically from a seed:
//
//   CBR      — constant bit rate, fixed packet size (video/TDM-like).
//   Poisson  — exponential inter-arrivals (classic aggregate model).
//   OnOffPareto — heavy-tailed bursts (self-similar data traffic).
//   VoIP     — 20-ms voice frames inside exponential talk spurts.
//   Video    — periodic frames with heavy-tailed frame sizes split into
//              MTU-sized packets.
//
// End-of-window convention: every source emits arrivals over the
// half-open interval [start_ns, end_ns). An arrival stamped exactly
// end_ns is NOT emitted, so back-to-back windows [0,T) and [T,2T)
// partition time with no duplicated or lost boundary arrival. Sources
// enforce it uniformly as `time >= end -> exhausted`; a workload that
// wants an inclusive horizon passes end_ns + 1.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "net/packet.hpp"

namespace wfqs::net {

struct Arrival {
    TimeNs time_ns;
    std::uint32_t size_bytes;
};

/// A stream of arrivals with non-decreasing times, ending with nullopt.
class TrafficSource {
public:
    virtual ~TrafficSource() = default;
    virtual std::optional<Arrival> next() = 0;
    virtual std::string name() const = 0;
};

class CbrSource final : public TrafficSource {
public:
    CbrSource(std::uint64_t rate_bps, std::uint32_t packet_bytes, TimeNs start_ns,
              TimeNs end_ns);
    std::optional<Arrival> next() override;
    std::string name() const override { return "CBR"; }

private:
    TimeNs interval_;
    std::uint32_t packet_bytes_;
    TimeNs next_;
    TimeNs end_;
};

class PoissonSource final : public TrafficSource {
public:
    /// Exponential inter-arrivals at `rate_pps`; packet sizes uniform in
    /// [min_bytes, max_bytes].
    PoissonSource(double rate_pps, std::uint32_t min_bytes, std::uint32_t max_bytes,
                  TimeNs end_ns, std::uint64_t seed);
    std::optional<Arrival> next() override;
    std::string name() const override { return "Poisson"; }

private:
    double rate_pps_;
    std::uint32_t min_bytes_;
    std::uint32_t max_bytes_;
    TimeNs end_;
    TimeNs t_ = 0;
    Rng rng_;
};

class OnOffParetoSource final : public TrafficSource {
public:
    /// During an ON period packets of `packet_bytes` are sent back-to-back
    /// at `peak_rate_bps`; ON durations are Pareto(alpha) with the given
    /// mean, OFF durations exponential with mean `mean_off_s`.
    OnOffParetoSource(std::uint64_t peak_rate_bps, std::uint32_t packet_bytes,
                      double mean_on_s, double mean_off_s, double alpha, TimeNs end_ns,
                      std::uint64_t seed);
    std::optional<Arrival> next() override;
    std::string name() const override { return "on-off Pareto"; }

private:
    std::uint64_t peak_rate_;
    std::uint32_t packet_bytes_;
    double mean_on_s_;
    double mean_off_s_;
    double alpha_;
    TimeNs end_;
    TimeNs t_ = 0;
    TimeNs burst_end_ = 0;
    Rng rng_;
};

class VoipSource final : public TrafficSource {
public:
    /// 20-ms frames of `frame_bytes` (default 200 B ≈ G.711 + headers)
    /// during talk spurts; spurt/silence both exponential.
    VoipSource(TimeNs end_ns, std::uint64_t seed, std::uint32_t frame_bytes = 200);
    std::optional<Arrival> next() override;
    std::string name() const override { return "VoIP"; }

private:
    std::uint32_t frame_bytes_;
    TimeNs end_;
    TimeNs t_ = 0;
    TimeNs spurt_end_ = 0;
    Rng rng_;
};

class VideoSource final : public TrafficSource {
public:
    /// `fps` frames per second; frame sizes Pareto-distributed around
    /// `mean_frame_bytes`, fragmented into `mtu_bytes` packets sent
    /// back-to-back at frame boundaries.
    VideoSource(double fps, std::uint32_t mean_frame_bytes, std::uint32_t mtu_bytes,
                TimeNs end_ns, std::uint64_t seed);
    std::optional<Arrival> next() override;
    std::string name() const override { return "video"; }

private:
    TimeNs frame_interval_;
    std::uint32_t mean_frame_bytes_;
    std::uint32_t mtu_bytes_;
    TimeNs end_;
    TimeNs frame_time_ = 0;
    std::uint32_t remaining_in_frame_ = 0;
    std::uint32_t fragment_index_ = 0;
    Rng rng_;
};

/// A flow bound to a source and a fair-queueing weight.
struct FlowSpec {
    std::unique_ptr<TrafficSource> source;
    std::uint32_t weight;
};

/// Pre-built workload mixes used across the benches.
std::vector<FlowSpec> make_mixed_profile(TimeNs end_ns, std::uint64_t seed);
std::vector<FlowSpec> make_voip_heavy_profile(TimeNs end_ns, std::uint64_t seed);

}  // namespace wfqs::net
