#include "net/parallel_driver.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <functional>
#include <memory>
#include <queue>
#include <thread>

#include "common/assert.hpp"
#include "fault/errors.hpp"
#include "net/spsc_ring.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/profiler.hpp"
#include "obs/tracer.hpp"

namespace wfqs::net {
namespace {

constexpr double ns_to_trace_us(TimeNs t) { return static_cast<double>(t) / 1000.0; }

// Batch/ring sizing: batches big enough to amortize the ring's release
// store and the consumer's cache-miss burst, rings a few batches deep so
// stages ride out each other's jitter.
constexpr std::size_t kGenBatch = 128;
constexpr std::size_t kMergeBatch = 256;
constexpr std::size_t kSchedBatch = 256;
constexpr std::size_t kSchedBatchMin = 32;
constexpr std::size_t kEgressBatch = 256;
constexpr std::size_t kFlowRingCap = 1024;
constexpr std::size_t kMergedRingCap = 4096;
constexpr std::size_t kEgressRingCap = 4096;

/// Mirror of SimDriver's pending-arrival heap node: the merge stage
/// replays the identical (time, seq) discipline.
struct PendingArrival {
    TimeNs time;
    std::size_t source;
    std::uint32_t size_bytes;
    std::uint64_t seq;

    bool operator>(const PendingArrival& o) const {
        return time != o.time ? time > o.time : seq > o.seq;
    }
};

/// One result/metric side effect of the schedule stage, applied by the
/// egress stage in emission order (= the sequential loop's order).
struct EgressEvent {
    enum Kind : std::uint8_t { kArrival, kDrop, kFault, kDeparture };
    Kind kind;
    Packet pkt;  ///< kArrival, kDeparture
    TimeNs t0;   ///< kDrop/kFault: event time; kDeparture: service start
    TimeNs t1;   ///< kDeparture: link-done time
};

/// Applies egress events exactly as the sequential loop would have, in
/// the order it would have: vector appends, counters, the delay
/// histogram (same floating-point accumulation order), trace instants.
class EgressSink {
public:
    EgressSink(SimResult& result, obs::MetricsRegistry* metrics,
               obs::HostProfiler::StageCounters* prof)
        : result_(result), prof_(prof) {
        if (metrics) {
            m_offered_ = &metrics->counter("net.offered_packets");
            m_dropped_ = &metrics->counter("net.dropped_packets");
            m_delivered_ = &metrics->counter("net.delivered_packets");
            m_faults_ = &metrics->counter("net.sorter_faults");
            m_delay_ = &metrics->histogram("net.delay_us");
        }
    }

    void apply(const EgressEvent& e) {
        if (prof_) prof_->add_items(1);
        switch (e.kind) {
            case EgressEvent::kArrival:
                result_.all_arrivals.push_back(e.pkt);
                ++result_.offered_packets;
                WFQS_TRACE_INSTANT("arrival", "net", ns_to_trace_us(e.pkt.arrival_ns));
                if (m_offered_) m_offered_->inc();
                break;
            case EgressEvent::kDrop:
                ++result_.dropped_packets;
                WFQS_TRACE_INSTANT("drop", "net", ns_to_trace_us(e.t0));
                if (m_dropped_) m_dropped_->inc();
                break;
            case EgressEvent::kFault:
                ++result_.sorter_faults;
                WFQS_TRACE_INSTANT("sorter-fault", "net", ns_to_trace_us(e.t0));
                if (m_faults_) m_faults_->inc();
                break;
            case EgressEvent::kDeparture:
                result_.records.push_back(PacketRecord{e.pkt, e.t0, e.t1});
                WFQS_TRACE_INSTANT("departure", "net", ns_to_trace_us(e.t1));
                if (m_delivered_) {
                    m_delivered_->inc();
                    m_delay_->record(static_cast<double>(e.t1 - e.pkt.arrival_ns) /
                                     1000.0);
                }
                result_.last_departure_ns = e.t1;
                break;
        }
    }

private:
    SimResult& result_;
    obs::HostProfiler::StageCounters* prof_;
    obs::Counter* m_offered_ = nullptr;
    obs::Counter* m_dropped_ = nullptr;
    obs::Counter* m_delivered_ = nullptr;
    obs::Counter* m_faults_ = nullptr;
    obs::CycleHistogram* m_delay_ = nullptr;
};

/// Schedule-stage emitter: inline into the sink when egress shares the
/// calling thread, batched into the egress ring otherwise.
class EgressEmitter {
public:
    EgressEmitter(EgressSink* inline_sink, SpscRing<EgressEvent>* ring,
                  const std::atomic<bool>& abort)
        : sink_(inline_sink), ring_(ring), abort_(abort) {}

    void emit(const EgressEvent& e) {
        if (sink_) {
            sink_->apply(e);
            return;
        }
        buf_[n_++] = e;
        if (n_ == kEgressBatch) flush();
    }

    /// Drain the local batch; called before the schedule stage blocks so
    /// completed packets never sit behind a stalled input.
    void flush() {
        if (!sink_ && n_ != 0) {
            ring_->push_all(buf_, n_, abort_);
            n_ = 0;
        }
    }

    void finish() {
        flush();
        if (ring_) ring_->close();
    }

private:
    EgressSink* sink_;
    SpscRing<EgressEvent>* ring_;
    const std::atomic<bool>& abort_;
    EgressEvent buf_[kEgressBatch];
    std::size_t n_ = 0;
};

/// The merge stage: replays SimDriver's priority-queue discipline over
/// per-flow arrival streams, assigning seq numbers and packet ids in the
/// identical order, and emits fully-formed Packets time-ordered.
template <typename NextFn>
void run_merge(std::size_t flow_count, NextFn&& next, SpscRing<Packet>& out,
               const std::atomic<bool>& abort,
               obs::HostProfiler::StageCounters* prof) {
    std::priority_queue<PendingArrival, std::vector<PendingArrival>,
                        std::greater<PendingArrival>>
        pq;
    std::uint64_t seq = 0;
    for (std::size_t i = 0; i < flow_count; ++i)
        if (const auto a = next(i))
            pq.push(PendingArrival{a->time_ns, i, a->size_bytes, seq++});

    std::uint64_t next_packet_id = 0;
    Packet buf[kMergeBatch];
    std::size_t n = 0;
    while (!pq.empty()) {
        const PendingArrival a = pq.top();
        pq.pop();
        buf[n++] = Packet{next_packet_id++, static_cast<FlowId>(a.source),
                          a.size_bytes, a.time};
        if (n == kMergeBatch) {
            if (prof) prof->add_items(n);
            if (!out.push_all(buf, n, abort)) return;
            n = 0;
        }
        if (const auto nx = next(a.source)) {
            WFQS_ASSERT_MSG(nx->time_ns >= a.time,
                            "traffic source went backwards in time");
            pq.push(PendingArrival{nx->time_ns, a.source, nx->size_bytes, seq++});
        }
    }
    if (n != 0) {
        if (prof) prof->add_items(n);
        out.push_all(buf, n, abort);
    }
    out.close();
}

/// One gen worker: drains its owned traffic sources into their per-flow
/// rings. Never blocks on a single full ring (another owned flow could be
/// starving the merge stage — a deadlock); instead it rotates over its
/// flows with a one-batch backlog each and yields on a no-progress pass.
class GenWorker {
public:
    struct Feed {
        std::size_t flow;
        TrafficSource* source;
        SpscRing<Arrival>* ring;
        Arrival pending[kGenBatch];
        std::size_t n = 0, off = 0;
        bool exhausted = false;
        bool done() const { return exhausted && off == n; }
    };

    GenWorker(std::vector<Feed> feeds, const std::atomic<bool>& abort,
              obs::HostProfiler::StageCounters* prof)
        : feeds_(std::move(feeds)), abort_(abort), prof_(prof) {}

    void run() {
        std::size_t live = feeds_.size();
        bool stalled = false;  // inside a run of no-progress passes
        std::chrono::steady_clock::time_point stall_start;
        const auto settle = [&] {
            if (stalled) {
                stalled = false;
                const auto ns =
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - stall_start)
                        .count();
                stall_ns += static_cast<std::uint64_t>(ns);
                if (prof_)
                    prof_->add_stall_ns(static_cast<std::uint64_t>(ns));
            }
        };
        while (live != 0) {
            bool progress = false;
            live = 0;
            for (auto& f : feeds_) {
                if (f.done()) continue;
                if (f.off == f.n && !f.exhausted) {
                    f.off = f.n = 0;
                    while (f.n < kGenBatch) {
                        const auto a = f.source->next();
                        if (!a) {
                            f.exhausted = true;
                            break;
                        }
                        f.pending[f.n++] = *a;
                    }
                    progress = progress || f.n != 0;
                    if (prof_ && f.n != 0) prof_->add_items(f.n);
                }
                if (f.off < f.n) {
                    const std::size_t pushed =
                        f.ring->try_push(f.pending + f.off, f.n - f.off);
                    f.off += pushed;
                    progress = progress || pushed != 0;
                }
                if (f.done())
                    f.ring->close();
                else
                    ++live;
            }
            if (live != 0 && !progress) {
                if (!stalled) {
                    stalled = true;
                    stall_start = std::chrono::steady_clock::now();
                    ++stall_episodes;
                    if (prof_) prof_->inc_stalls();
                }
                if (abort_.load(std::memory_order_relaxed)) {
                    settle();
                    return;
                }
                std::this_thread::yield();
            } else {
                settle();
            }
        }
        settle();
    }

    std::uint64_t stall_episodes = 0;
    std::uint64_t stall_ns = 0;

private:
    std::vector<Feed> feeds_;
    const std::atomic<bool>& abort_;
    obs::HostProfiler::StageCounters* prof_;
};

/// Merge-stage view of one per-flow ring: batched blocking consumer.
struct FlowTap {
    SpscRing<Arrival>* ring;
    Arrival buf[kGenBatch];
    std::size_t n = 0, off = 0;

    std::optional<Arrival> next(const std::atomic<bool>& abort) {
        if (off == n) {
            n = ring->pop_wait(buf, kGenBatch, abort);
            off = 0;
            if (n == 0) return std::nullopt;  // closed and drained (or abort)
        }
        return buf[off++];
    }
};

/// Schedule-stage view of the merged ring: batched consumer with
/// one-packet lookahead (the loop's service decision needs the next
/// arrival time before committing to consume it).
class MergedTap {
public:
    MergedTap(SpscRing<Packet>& ring, const std::atomic<bool>& abort,
              EgressEmitter& egress, PipelineStats& stats,
              obs::CycleHistogram* batch_hist,
              obs::HostProfiler::StageCounters* prof)
        : ring_(ring), abort_(abort), egress_(egress), stats_(stats),
          batch_hist_(batch_hist), prof_(prof) {}

    /// Next merged arrival, or nullptr once the stream is over. Blocks
    /// on an empty ring (flushing pending egress events first).
    const Packet* peek() {
        if (off_ == n_ && !end_) refill();
        return end_ ? nullptr : &buf_[off_];
    }
    void advance() { ++off_; }

private:
    void refill() {
        egress_.flush();
        if (ring_.size_approx() == 0) {
            // The serial stage is about to wait on its input — the exact
            // signature of a merge-bound pipeline; worth a black-box event.
            obs::flight_record(obs::FlightEventKind::kStall,
                               static_cast<double>(stats_.sched_items),
                               static_cast<std::int64_t>(
                                   obs::HostProfiler::Stage::kSched));
        }
        const std::size_t got = ring_.pop_wait(buf_, limit_, abort_);
        if (got == 0) {
            end_ = true;
            stats_.sched_batch_limit = limit_;
            return;
        }
        n_ = got;
        off_ = 0;
        // Top up: pop_wait returns on the first item it sees, but the
        // producer keeps landing packets while we copy — drain them now,
        // up to the wakeup cap, instead of paying another refill each.
        if (n_ < limit_) n_ += ring_.try_pop(buf_ + n_, limit_ - n_);
        // Occupancy autotune: full drains mean the ring runs deeper than
        // the cap (raise it toward the buffer size — fewer, fatter
        // wakeups); starved drains mean the producer is the tight side
        // (lower it so each wakeup's bookkeeping matches what arrives).
        if (n_ == limit_ && limit_ < kSchedBatch)
            limit_ *= 2;
        else if (n_ <= limit_ / 4 && limit_ > kSchedBatchMin)
            limit_ /= 2;
        ++stats_.sched_batches;
        stats_.sched_items += n_;
        stats_.sched_batch_limit = limit_;
        if (prof_) {
            prof_->add_items(n_);
            prof_->inc_batches();
        }
        if (batch_hist_) batch_hist_->record_cycles(n_);
    }

    SpscRing<Packet>& ring_;
    const std::atomic<bool>& abort_;
    EgressEmitter& egress_;
    PipelineStats& stats_;
    obs::CycleHistogram* batch_hist_;
    obs::HostProfiler::StageCounters* prof_;
    Packet buf_[kSchedBatch];
    std::size_t n_ = 0, off_ = 0;
    std::size_t limit_ = kSchedBatchMin * 2;  ///< per-wakeup drain cap
    bool end_ = false;
};

/// The schedule stage: SimDriver's main loop verbatim, with the arrival
/// heap replaced by the merged stream and side effects routed to egress.
void run_sched(scheduler::Scheduler& sched, std::uint64_t rate, MergedTap& in,
               EgressEmitter& out) {
    TimeNs link_free_at = 0;
    TimeNs now = 0;
    constexpr int kMaxRecoveries = 3;

    const auto note_fault = [&](TimeNs at) {
        obs::flight_record(obs::FlightEventKind::kFault, static_cast<double>(at));
        out.emit(EgressEvent{EgressEvent::kFault, Packet{}, at, 0});
    };
    const auto note_recovery = [](TimeNs at) {
        obs::flight_record(obs::FlightEventKind::kRecovery,
                           static_cast<double>(at));
    };
    const auto deliver = [&](const Packet& pkt) {
        now = std::max(now, pkt.arrival_ns);
        out.emit(EgressEvent{EgressEvent::kArrival, pkt, 0, 0});
        bool accepted = false;
        for (int attempt = 0;; ++attempt) {
            try {
                accepted = sched.enqueue(pkt, pkt.arrival_ns);
                break;
            } catch (const fault::FaultError&) {
                note_fault(pkt.arrival_ns);
                if (attempt >= kMaxRecoveries || !sched.recover()) throw;
                note_recovery(pkt.arrival_ns);
            }
        }
        if (!accepted)
            out.emit(EgressEvent{EgressEvent::kDrop, Packet{}, pkt.arrival_ns, 0});
    };

    for (;;) {
        const Packet* next = in.peek();
        if (next == nullptr && !sched.has_packets()) break;
        if (!sched.has_packets()) {
            deliver(*next);
            in.advance();
            continue;
        }
        const TimeNs service_start = std::max(link_free_at, now);
        if (next != nullptr && next->arrival_ns <= service_start) {
            deliver(*next);
            in.advance();
            continue;
        }
        std::optional<Packet> pkt;
        bool faulted = false;
        for (int attempt = 0;; ++attempt) {
            try {
                pkt = sched.dequeue(service_start);
                break;
            } catch (const fault::FaultError&) {
                faulted = true;
                note_fault(service_start);
                if (attempt >= kMaxRecoveries || !sched.recover()) throw;
                note_recovery(service_start);
            }
        }
        if (!pkt) {
            WFQS_ASSERT_MSG(faulted, "scheduler claimed packets but gave none");
            continue;
        }
        const TimeNs done = service_start + transmission_ns(pkt->size_bytes, rate);
        out.emit(EgressEvent{EgressEvent::kDeparture, *pkt, service_start, done});
        link_free_at = done;
    }
    out.finish();
}

/// Spawn a stage thread that records its exception and aborts the
/// pipeline instead of terminating the process.
template <typename Fn>
std::thread stage_thread(std::atomic<bool>& abort, std::exception_ptr& error, Fn fn) {
    return std::thread([&abort, &error, fn = std::move(fn)]() mutable {
        try {
            fn();
        } catch (...) {
            error = std::current_exception();
            abort.store(true, std::memory_order_relaxed);
        }
    });
}

}  // namespace

ParallelSimDriver::ParallelSimDriver(std::uint64_t link_rate_bps, unsigned threads)
    : rate_(link_rate_bps), threads_(std::max(threads, 1u)) {
    WFQS_REQUIRE(link_rate_bps > 0, "link rate must be positive");
}

void ParallelSimDriver::attach_metrics(obs::MetricsRegistry& registry) {
    metrics_ = &registry;
    registry.counter("net.offered_packets");
    registry.counter("net.dropped_packets");
    registry.counter("net.delivered_packets");
    registry.counter("net.sorter_faults");
    registry.histogram("net.delay_us", 0.0, 10'000.0, 1000);
    registry.histogram("host.pipeline.batch_size", 0.0,
                       static_cast<double>(kSchedBatch), 64);
    registry.gauge("host.pipeline.threads");
    registry.gauge("host.pipeline.gen_stalls");
    registry.gauge("host.pipeline.merge_stalls");
    registry.gauge("host.pipeline.sched_stalls");
    registry.gauge("host.pipeline.egress_stalls");
    registry.gauge("host.pipeline.gen_stall_ns");
    registry.gauge("host.pipeline.merge_stall_ns");
    registry.gauge("host.pipeline.sched_stall_ns");
    registry.gauge("host.pipeline.egress_stall_ns");
    registry.gauge("host.pipeline.flow_ring_occupancy");
    registry.gauge("host.pipeline.merged_ring_occupancy");
    registry.gauge("host.pipeline.egress_ring_occupancy");
    registry.gauge("host.pipeline.avg_sched_batch");
    registry.gauge("host.pipeline.batch_limit");
}

void ParallelSimDriver::publish_metrics() {
    if (!metrics_) return;
    metrics_->gauge("host.pipeline.threads").set(stats_.threads);
    metrics_->gauge("host.pipeline.gen_stalls")
        .set(static_cast<double>(stats_.gen_stalls));
    metrics_->gauge("host.pipeline.merge_stalls")
        .set(static_cast<double>(stats_.merge_stalls));
    metrics_->gauge("host.pipeline.sched_stalls")
        .set(static_cast<double>(stats_.sched_stalls));
    metrics_->gauge("host.pipeline.egress_stalls")
        .set(static_cast<double>(stats_.egress_stalls));
    metrics_->gauge("host.pipeline.gen_stall_ns")
        .set(static_cast<double>(stats_.gen_stall_ns));
    metrics_->gauge("host.pipeline.merge_stall_ns")
        .set(static_cast<double>(stats_.merge_stall_ns));
    metrics_->gauge("host.pipeline.sched_stall_ns")
        .set(static_cast<double>(stats_.sched_stall_ns));
    metrics_->gauge("host.pipeline.egress_stall_ns")
        .set(static_cast<double>(stats_.egress_stall_ns));
    metrics_->gauge("host.pipeline.flow_ring_occupancy").set(stats_.flow_ring_occupancy);
    metrics_->gauge("host.pipeline.merged_ring_occupancy")
        .set(stats_.merged_ring_occupancy);
    metrics_->gauge("host.pipeline.egress_ring_occupancy")
        .set(stats_.egress_ring_occupancy);
    metrics_->gauge("host.pipeline.avg_sched_batch").set(stats_.avg_sched_batch());
    metrics_->gauge("host.pipeline.batch_limit")
        .set(static_cast<double>(stats_.sched_batch_limit));
}

SimResult ParallelSimDriver::run(scheduler::Scheduler& sched,
                                 std::vector<FlowSpec>& flows) {
    stats_ = PipelineStats{};
    stats_.threads = threads_;
    if (threads_ <= 1) {
        // The bit-identity anchor: literally the sequential driver.
        SimDriver seq(rate_);
        if (metrics_) seq.attach_metrics(*metrics_);
        if (profiler_) {
            // One logical thread runs every stage section.
            using Stage = obs::HostProfiler::Stage;
            profiler_->set_stage_threads(Stage::kGen, 1);
            profiler_->set_stage_threads(Stage::kSched, 1);
            profiler_->set_stage_threads(Stage::kEgress, 1);
            seq.set_profiler(profiler_);
            profiler_->start_sampling();
        }
        SimResult result = seq.run(sched, flows);
        if (profiler_) profiler_->stop_sampling();
        // The sequential loop consumes one arrival per service decision:
        // every "batch" the schedule stage sees has size 1. Recording
        // them keeps host.pipeline.batch_size populated (and honest)
        // on the delegate path instead of silently empty.
        stats_.sched_batches = result.offered_packets;
        stats_.sched_items = result.offered_packets;
        stats_.sched_batch_limit = 1;  // the loop has no ring to drain
        if (metrics_)
            metrics_->histogram("host.pipeline.batch_size")
                .record_cycles(1, result.offered_packets);
        publish_metrics();
        return result;
    }

    // Flow registration stays on the calling thread, in flow order, as in
    // the sequential loop.
    for (std::size_t i = 0; i < flows.size(); ++i) {
        const FlowId id = sched.add_flow(flows[i].weight);
        WFQS_ASSERT_MSG(id == i, "scheduler must number flows sequentially");
    }

    using Stage = obs::HostProfiler::Stage;
    obs::HostProfiler::StageCounters* prof_gen =
        profiler_ ? &profiler_->stage(Stage::kGen) : nullptr;
    obs::HostProfiler::StageCounters* prof_merge =
        profiler_ ? &profiler_->stage(Stage::kMerge) : nullptr;
    obs::HostProfiler::StageCounters* prof_sched =
        profiler_ ? &profiler_->stage(Stage::kSched) : nullptr;
    obs::HostProfiler::StageCounters* prof_egress =
        profiler_ ? &profiler_->stage(Stage::kEgress) : nullptr;

    SimResult result;
    EgressSink sink(result, metrics_, prof_egress);
    std::atomic<bool> abort{false};

    const bool own_egress_thread = threads_ >= 3;
    const unsigned gen_workers =
        threads_ >= 4 ? std::min<unsigned>(threads_ - 3,
                                           std::max<std::size_t>(flows.size(), 1))
                      : 0;

    SpscRing<Packet> merged(kMergedRingCap);
    auto egress_ring = own_egress_thread
                           ? std::make_unique<SpscRing<EgressEvent>>(kEgressRingCap)
                           : nullptr;

    std::vector<std::unique_ptr<SpscRing<Arrival>>> flow_rings;
    std::vector<GenWorker> workers;
    if (gen_workers != 0) {
        flow_rings.reserve(flows.size());
        for (std::size_t i = 0; i < flows.size(); ++i)
            flow_rings.push_back(std::make_unique<SpscRing<Arrival>>(kFlowRingCap));
        std::vector<std::vector<GenWorker::Feed>> assignment(gen_workers);
        for (std::size_t i = 0; i < flows.size(); ++i)
            assignment[i % gen_workers].push_back(GenWorker::Feed{
                i, flows[i].source.get(), flow_rings[i].get()});
        workers.reserve(gen_workers);
        for (auto& feeds : assignment)
            workers.emplace_back(std::move(feeds), abort, prof_gen);
    }

    std::vector<std::thread> threads;
    std::vector<std::exception_ptr> errors(gen_workers + 2);
    std::vector<FlowTap> taps(flow_rings.size());
    for (std::size_t i = 0; i < flow_rings.size(); ++i)
        taps[i].ring = flow_rings[i].get();

    const auto join_all = [&] {
        for (auto& t : threads)
            if (t.joinable()) t.join();
    };

    // Batch-size distribution is recorded into a stage-local histogram
    // (single writer: the schedule thread) and merged into the registry's
    // view at quiescence — the profiler's sampler thread may read the
    // registry concurrently, and CycleHistogram is not atomic.
    obs::CycleHistogram local_batch_hist(0.0, static_cast<double>(kSchedBatch), 64);

    if (profiler_) {
        profiler_->set_stage_threads(Stage::kGen, gen_workers);
        profiler_->set_stage_threads(Stage::kMerge, 1);
        profiler_->set_stage_threads(Stage::kSched, 1);
        profiler_->set_stage_threads(Stage::kEgress, own_egress_thread ? 1 : 0);
        // Live ring probes: occupancy is instantaneous fill, stall series
        // come from the rings' single-writer atomic side stats. Sampling
        // stops before these rings leave scope.
        profiler_->add_gauge("ring.merged.occupancy", [&merged] {
            return static_cast<double>(merged.size_approx());
        });
        profiler_->add_counter("ring.merged.producer_stall_ns", [&merged] {
            return merged.producer_stats().stall_ns();
        });
        profiler_->add_counter("ring.merged.consumer_stall_ns", [&merged] {
            return merged.consumer_stats().stall_ns();
        });
        if (egress_ring) {
            SpscRing<EgressEvent>* er = egress_ring.get();
            profiler_->add_gauge("ring.egress.occupancy", [er] {
                return static_cast<double>(er->size_approx());
            });
            profiler_->add_counter("ring.egress.producer_stall_ns", [er] {
                return er->producer_stats().stall_ns();
            });
            profiler_->add_counter("ring.egress.consumer_stall_ns", [er] {
                return er->consumer_stats().stall_ns();
            });
        }
        if (!flow_rings.empty()) {
            profiler_->add_gauge("ring.flow.occupancy", [&flow_rings] {
                std::uint64_t fill = 0;
                for (const auto& r : flow_rings) fill += r->size_approx();
                return static_cast<double>(fill) /
                       static_cast<double>(flow_rings.size());
            });
            profiler_->add_counter("ring.flow.consumer_stall_ns", [&flow_rings] {
                std::uint64_t ns = 0;
                for (const auto& r : flow_rings) ns += r->consumer_stats().stall_ns();
                return ns;
            });
        }
        profiler_->start_sampling();
    }

    try {
        for (unsigned w = 0; w < gen_workers; ++w)
            threads.push_back(
                stage_thread(abort, errors[w], [&workers, w] { workers[w].run(); }));

        // Merge thread: pulls flow rings when gen workers exist, calls the
        // traffic sources directly (fused gen+merge) otherwise.
        threads.push_back(stage_thread(abort, errors[gen_workers], [&] {
            if (gen_workers != 0) {
                run_merge(
                    flows.size(),
                    [&](std::size_t i) { return taps[i].next(abort); }, merged, abort,
                    prof_merge);
            } else {
                run_merge(
                    flows.size(),
                    [&](std::size_t i) { return flows[i].source->next(); }, merged,
                    abort, prof_merge);
            }
        }));

        if (own_egress_thread) {
            threads.push_back(stage_thread(abort, errors[gen_workers + 1], [&] {
                EgressEvent buf[kEgressBatch];
                while (const std::size_t n =
                           egress_ring->pop_wait(buf, kEgressBatch, abort))
                    for (std::size_t i = 0; i < n; ++i) sink.apply(buf[i]);
            }));
        }

        EgressEmitter emitter(own_egress_thread ? nullptr : &sink, egress_ring.get(),
                              abort);
        MergedTap tap(merged, abort, emitter, stats_, &local_batch_hist,
                      prof_sched);
        run_sched(sched, rate_, tap, emitter);
    } catch (...) {
        abort.store(true, std::memory_order_relaxed);
        join_all();
        if (profiler_) profiler_->stop_sampling();
        throw;
    }
    join_all();
    // Stop sampling before folding so the burst of end-of-run bookkeeping
    // never shows up as a fake final window (and before any ring a probe
    // reads can leave scope).
    if (profiler_) profiler_->stop_sampling();
    for (const auto& err : errors)
        if (err) std::rethrow_exception(err);

    if (metrics_)
        metrics_->histogram("host.pipeline.batch_size").merge(local_batch_hist);

    // Fold ring telemetry into the per-stage stall/occupancy view. The
    // stage-to-ring-side mapping: a side's stalls charge the stage that
    // waited on it.
    for (const auto& w : workers) {
        stats_.gen_stalls += w.stall_episodes;
        stats_.gen_stall_ns += w.stall_ns;
    }
    double flow_occ = 0.0;
    for (const auto& ring : flow_rings) {
        stats_.gen_stalls += ring->producer_stats().stall_episodes();
        stats_.gen_stall_ns += ring->producer_stats().stall_ns();
        stats_.merge_stalls += ring->consumer_stats().stall_episodes();
        stats_.merge_stall_ns += ring->consumer_stats().stall_ns();
        flow_occ += ring->consumer_stats().avg_occupancy();
    }
    stats_.flow_ring_occupancy =
        flow_rings.empty() ? 0.0 : flow_occ / static_cast<double>(flow_rings.size());
    stats_.merge_stalls += merged.producer_stats().stall_episodes();
    stats_.merge_stall_ns += merged.producer_stats().stall_ns();
    stats_.sched_stalls += merged.consumer_stats().stall_episodes();
    stats_.sched_stall_ns += merged.consumer_stats().stall_ns();
    stats_.merged_ring_occupancy = merged.consumer_stats().avg_occupancy();
    if (egress_ring) {
        stats_.sched_stalls += egress_ring->producer_stats().stall_episodes();
        stats_.sched_stall_ns += egress_ring->producer_stats().stall_ns();
        stats_.egress_stalls += egress_ring->consumer_stats().stall_episodes();
        stats_.egress_stall_ns += egress_ring->consumer_stats().stall_ns();
        stats_.egress_ring_occupancy = egress_ring->consumer_stats().avg_occupancy();
    }
    if (profiler_) {
        // Ring-side stall telemetry reaches the profiler's stage counters
        // at quiescence (the live timeline reads the rings directly); the
        // GenWorker stall time was charged live, so only the flow-ring
        // producer share of gen remains.
        const auto fold = [](obs::HostProfiler::StageCounters* c,
                             std::uint64_t episodes, std::uint64_t ns) {
            c->add_stalls(episodes);
            c->add_stall_ns(ns);
        };
        std::uint64_t live_gen_eps = 0, live_gen_ns = 0;
        for (const auto& w : workers) {
            live_gen_eps += w.stall_episodes;
            live_gen_ns += w.stall_ns;
        }
        fold(prof_gen, stats_.gen_stalls - live_gen_eps,
             stats_.gen_stall_ns - live_gen_ns);
        fold(prof_merge, stats_.merge_stalls, stats_.merge_stall_ns);
        fold(prof_sched, stats_.sched_stalls, stats_.sched_stall_ns);
        fold(prof_egress, stats_.egress_stalls, stats_.egress_stall_ns);
    }
    publish_metrics();
    return result;
}

std::uint64_t result_fingerprint(const SimResult& r) {
    std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
    const auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xFF;
            h *= 1099511628211ull;
        }
    };
    mix(r.offered_packets);
    mix(r.dropped_packets);
    mix(r.sorter_faults);
    mix(r.last_departure_ns);
    mix(r.all_arrivals.size());
    for (const Packet& p : r.all_arrivals) {
        mix(p.id);
        mix(p.flow);
        mix(p.size_bytes);
        mix(p.arrival_ns);
    }
    mix(r.records.size());
    for (const PacketRecord& rec : r.records) {
        mix(rec.packet.id);
        mix(rec.packet.flow);
        mix(rec.packet.size_bytes);
        mix(rec.packet.arrival_ns);
        mix(rec.service_start_ns);
        mix(rec.departure_ns);
    }
    return h;
}

bool identical_results(const SimResult& a, const SimResult& b) {
    const auto same_packet = [](const Packet& x, const Packet& y) {
        return x.id == y.id && x.flow == y.flow && x.size_bytes == y.size_bytes &&
               x.arrival_ns == y.arrival_ns;
    };
    if (a.offered_packets != b.offered_packets ||
        a.dropped_packets != b.dropped_packets ||
        a.sorter_faults != b.sorter_faults ||
        a.last_departure_ns != b.last_departure_ns ||
        a.all_arrivals.size() != b.all_arrivals.size() ||
        a.records.size() != b.records.size())
        return false;
    for (std::size_t i = 0; i < a.all_arrivals.size(); ++i)
        if (!same_packet(a.all_arrivals[i], b.all_arrivals[i])) return false;
    for (std::size_t i = 0; i < a.records.size(); ++i) {
        if (!same_packet(a.records[i].packet, b.records[i].packet) ||
            a.records[i].service_start_ns != b.records[i].service_start_ns ||
            a.records[i].departure_ns != b.records[i].departure_ns)
            return false;
    }
    return true;
}

}  // namespace wfqs::net
