// Packet and flow types shared by the traffic generators, schedulers, and
// analysis.
#pragma once

#include <cstdint>
#include <vector>

namespace wfqs::net {

using TimeNs = std::uint64_t;
using FlowId = std::uint32_t;

struct Packet {
    std::uint64_t id = 0;
    FlowId flow = 0;
    std::uint32_t size_bytes = 0;
    TimeNs arrival_ns = 0;

    std::uint32_t size_bits() const { return size_bytes * 8; }
};

/// Completed transmission record produced by the simulation driver.
struct PacketRecord {
    Packet packet;
    TimeNs service_start_ns = 0;
    TimeNs departure_ns = 0;  ///< transmission completed

    TimeNs delay_ns() const { return departure_ns - packet.arrival_ns; }
};

/// Serialization time of a packet on a link.
constexpr TimeNs transmission_ns(std::uint32_t size_bytes, std::uint64_t rate_bps) {
    return static_cast<TimeNs>(
        (static_cast<unsigned __int128>(size_bytes) * 8 * 1'000'000'000ULL + rate_bps - 1) /
        rate_bps);
}

}  // namespace wfqs::net
