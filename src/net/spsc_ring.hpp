// Lock-free single-producer / single-consumer ring connecting two host
// pipeline stages.
//
// The classic bounded ring with monotonically increasing 64-bit produce /
// consume cursors (masked on access, so the full power-of-two capacity is
// usable) and cached counterpart cursors: the producer re-reads the
// consumer's cursor only when its cached copy says the ring looks full,
// and vice versa, so the steady-state cost per batch is one release store
// and no shared-line ping-pong. Batched push/pop is the native interface
// — the host pipeline moves Packets and egress events in bursts precisely
// to amortize this synchronization.
//
// Progress and shutdown. Blocking variants spin briefly then yield; every
// wait checks an external abort flag so a failing stage can unwind the
// whole pipeline without deadlock. The producer close()s the ring after
// its last push; pop_wait() returns 0 only once the ring is closed *and*
// drained (or aborted), which is the consumer's end-of-stream signal.
//
// Telemetry. Each side owns a RingSideStats block (stall episodes and
// stall time, items, batches; the consumer also samples occupancy per
// pop). The owning side's thread is the *only writer*, so updates are
// relaxed load+store on atomics — no RMW, no lock prefix — and a
// profiler thread may sample the block mid-run without tearing (the
// single-writer rule; see DESIGN.md "Continuous telemetry"). Stall time
// reads the clock only at stall-episode boundaries, so a stage that
// never blocks never pays for a clock read.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <type_traits>

#include "common/assert.hpp"

namespace wfqs::net {

/// Per-side ring telemetry. Written only by the owning side's thread
/// (relaxed single-writer atomics); readable concurrently — a sample is
/// untorn per field, slightly stale at worst. Occupancy fields are
/// consumer-side only.
class RingSideStats {
public:
    // Writer side (owning thread only).
    void add_batch(std::uint64_t n) {
        bump(items_, n);
        bump(batches_, 1);
    }
    void note_stall_begin() { bump(stall_episodes_, 1); }
    void note_stall_ns(std::uint64_t ns) { bump(stall_ns_, ns); }
    void sample_occupancy(std::uint64_t fill) {
        bump(occupancy_sum_, fill);
        bump(occupancy_samples_, 1);
    }

    // Reader side (any thread).
    std::uint64_t items() const { return items_.load(std::memory_order_relaxed); }
    std::uint64_t batches() const {
        return batches_.load(std::memory_order_relaxed);
    }
    std::uint64_t stall_episodes() const {
        return stall_episodes_.load(std::memory_order_relaxed);
    }
    std::uint64_t stall_ns() const {
        return stall_ns_.load(std::memory_order_relaxed);
    }
    std::uint64_t occupancy_samples() const {
        return occupancy_samples_.load(std::memory_order_relaxed);
    }

    double avg_occupancy() const {
        const std::uint64_t n = occupancy_samples_.load(std::memory_order_relaxed);
        return n == 0 ? 0.0
                      : static_cast<double>(
                            occupancy_sum_.load(std::memory_order_relaxed)) /
                            static_cast<double>(n);
    }
    double avg_batch() const {
        const std::uint64_t b = batches_.load(std::memory_order_relaxed);
        return b == 0 ? 0.0
                      : static_cast<double>(items_.load(std::memory_order_relaxed)) /
                            static_cast<double>(b);
    }

private:
    static void bump(std::atomic<std::uint64_t>& a, std::uint64_t n) {
        a.store(a.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
    }
    std::atomic<std::uint64_t> items_{0};
    std::atomic<std::uint64_t> batches_{0};
    std::atomic<std::uint64_t> stall_episodes_{0};  ///< waits with no room/data
    std::atomic<std::uint64_t> stall_ns_{0};        ///< time inside those waits
    std::atomic<std::uint64_t> occupancy_sum_{0};   ///< fill levels seen at pop
    std::atomic<std::uint64_t> occupancy_samples_{0};
};

template <typename T>
class SpscRing {
    static_assert(std::is_trivially_copyable_v<T>,
                  "ring entries are moved with raw copies");

public:
    explicit SpscRing(std::size_t capacity) : capacity_(capacity), mask_(capacity - 1) {
        WFQS_REQUIRE(capacity >= 2 && (capacity & (capacity - 1)) == 0,
                     "ring capacity must be a power of two");
        buffer_ = std::make_unique<T[]>(capacity);
    }

    std::size_t capacity() const { return capacity_; }

    // -- producer side -----------------------------------------------------

    /// Copy up to `n` items in; returns how many fit (0 when full).
    std::size_t try_push(const T* items, std::size_t n) {
        const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
        std::size_t free = capacity_ - static_cast<std::size_t>(tail - cached_head_);
        if (free < n) {
            cached_head_ = head_.load(std::memory_order_acquire);
            free = capacity_ - static_cast<std::size_t>(tail - cached_head_);
        }
        const std::size_t count = n < free ? n : free;
        for (std::size_t i = 0; i < count; ++i)
            buffer_[static_cast<std::size_t>(tail + i) & mask_] = items[i];
        if (count != 0) tail_.store(tail + count, std::memory_order_release);
        return count;
    }

    /// Push all `n` items, waiting for room; false = aborted (items from
    /// the unpushed suffix are dropped — the pipeline is unwinding).
    bool push_all(const T* items, std::size_t n, const std::atomic<bool>& abort) {
        std::size_t done = 0;
        std::chrono::steady_clock::time_point stall_start;
        bool stalled = false;
        while (done < n) {
            const std::size_t pushed = try_push(items + done, n - done);
            done += pushed;
            if (done == n) break;
            if (pushed == 0 && !stalled) {
                stalled = true;
                producer_.note_stall_begin();
                stall_start = std::chrono::steady_clock::now();
            }
            if (abort.load(std::memory_order_relaxed)) {
                if (stalled) producer_.note_stall_ns(since_ns(stall_start));
                return false;
            }
            spin_wait();
        }
        if (stalled) producer_.note_stall_ns(since_ns(stall_start));
        producer_.add_batch(n);
        return true;
    }

    /// Producer's end-of-stream mark; call after the final push.
    void close() { closed_.store(true, std::memory_order_release); }

    // -- consumer side -----------------------------------------------------

    /// Copy up to `max_n` items out; returns how many were available.
    std::size_t try_pop(T* out, std::size_t max_n) {
        const std::uint64_t head = head_.load(std::memory_order_relaxed);
        std::size_t avail = static_cast<std::size_t>(cached_tail_ - head);
        if (avail == 0) {
            cached_tail_ = tail_.load(std::memory_order_acquire);
            avail = static_cast<std::size_t>(cached_tail_ - head);
            if (avail == 0) return 0;
        }
        const std::size_t count = max_n < avail ? max_n : avail;
        for (std::size_t i = 0; i < count; ++i)
            out[i] = buffer_[static_cast<std::size_t>(head + i) & mask_];
        head_.store(head + count, std::memory_order_release);
        consumer_.add_batch(count);
        consumer_.sample_occupancy(avail);
        return count;
    }

    /// Pop at least one item unless the stream is over: returns 0 only
    /// when the ring is closed and drained, or the pipeline aborted.
    std::size_t pop_wait(T* out, std::size_t max_n, const std::atomic<bool>& abort) {
        std::chrono::steady_clock::time_point stall_start;
        bool stalled = false;
        const auto settle = [&] {
            if (stalled) consumer_.note_stall_ns(since_ns(stall_start));
        };
        for (;;) {
            if (const std::size_t n = try_pop(out, max_n)) {
                settle();
                return n;
            }
            if (closed_.load(std::memory_order_acquire)) {
                // Close happens-after the final push; one more pop decides.
                settle();
                return try_pop(out, max_n);
            }
            if (abort.load(std::memory_order_relaxed)) {
                settle();
                return 0;
            }
            if (!stalled) {
                stalled = true;
                consumer_.note_stall_begin();
                stall_start = std::chrono::steady_clock::now();
            }
            spin_wait();
        }
    }

    /// Consumer-side fill estimate (exact at the consumer's cursor).
    std::size_t size_approx() const {
        return static_cast<std::size_t>(tail_.load(std::memory_order_acquire) -
                                        head_.load(std::memory_order_acquire));
    }

    const RingSideStats& producer_stats() const { return producer_; }
    const RingSideStats& consumer_stats() const { return consumer_; }

private:
    static void spin_wait() { std::this_thread::yield(); }
    static std::uint64_t since_ns(std::chrono::steady_clock::time_point t0) {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
    }

    std::size_t capacity_;
    std::uint64_t mask_;
    std::unique_ptr<T[]> buffer_;

    alignas(64) std::atomic<std::uint64_t> head_{0};  ///< consume cursor
    alignas(64) std::atomic<std::uint64_t> tail_{0};  ///< produce cursor
    std::atomic<bool> closed_{false};

    alignas(64) std::uint64_t cached_head_ = 0;  ///< producer's view of head_
    RingSideStats producer_;
    alignas(64) std::uint64_t cached_tail_ = 0;  ///< consumer's view of tail_
    RingSideStats consumer_;
};

}  // namespace wfqs::net
