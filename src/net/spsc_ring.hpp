// Lock-free single-producer / single-consumer ring connecting two host
// pipeline stages.
//
// The classic bounded ring with monotonically increasing 64-bit produce /
// consume cursors (masked on access, so the full power-of-two capacity is
// usable) and cached counterpart cursors: the producer re-reads the
// consumer's cursor only when its cached copy says the ring looks full,
// and vice versa, so the steady-state cost per batch is one release store
// and no shared-line ping-pong. Batched push/pop is the native interface
// — the host pipeline moves Packets and egress events in bursts precisely
// to amortize this synchronization.
//
// Progress and shutdown. Blocking variants spin briefly then yield; every
// wait checks an external abort flag so a failing stage can unwind the
// whole pipeline without deadlock. The producer close()s the ring after
// its last push; pop_wait() returns 0 only once the ring is closed *and*
// drained (or aborted), which is the consumer's end-of-stream signal.
//
// Telemetry. Each side owns a RingSideStats block (stall episodes, items,
// batches; the consumer also samples occupancy per pop) read by the
// driver after the stage threads join — single-writer, so plain uint64
// fields suffice.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <type_traits>

#include "common/assert.hpp"

namespace wfqs::net {

/// Per-side ring telemetry. Written only by the owning side's thread;
/// read after join. Occupancy fields are consumer-side only.
struct RingSideStats {
    std::uint64_t items = 0;
    std::uint64_t batches = 0;
    std::uint64_t stall_episodes = 0;  ///< waits that found no room / no data
    std::uint64_t occupancy_sum = 0;   ///< sum of fill levels seen at pop
    std::uint64_t occupancy_samples = 0;

    double avg_occupancy() const {
        return occupancy_samples == 0
                   ? 0.0
                   : static_cast<double>(occupancy_sum) /
                         static_cast<double>(occupancy_samples);
    }
    double avg_batch() const {
        return batches == 0 ? 0.0
                            : static_cast<double>(items) / static_cast<double>(batches);
    }
};

template <typename T>
class SpscRing {
    static_assert(std::is_trivially_copyable_v<T>,
                  "ring entries are moved with raw copies");

public:
    explicit SpscRing(std::size_t capacity) : capacity_(capacity), mask_(capacity - 1) {
        WFQS_REQUIRE(capacity >= 2 && (capacity & (capacity - 1)) == 0,
                     "ring capacity must be a power of two");
        buffer_ = std::make_unique<T[]>(capacity);
    }

    std::size_t capacity() const { return capacity_; }

    // -- producer side -----------------------------------------------------

    /// Copy up to `n` items in; returns how many fit (0 when full).
    std::size_t try_push(const T* items, std::size_t n) {
        const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
        std::size_t free = capacity_ - static_cast<std::size_t>(tail - cached_head_);
        if (free < n) {
            cached_head_ = head_.load(std::memory_order_acquire);
            free = capacity_ - static_cast<std::size_t>(tail - cached_head_);
        }
        const std::size_t count = n < free ? n : free;
        for (std::size_t i = 0; i < count; ++i)
            buffer_[static_cast<std::size_t>(tail + i) & mask_] = items[i];
        if (count != 0) tail_.store(tail + count, std::memory_order_release);
        return count;
    }

    /// Push all `n` items, waiting for room; false = aborted (items from
    /// the unpushed suffix are dropped — the pipeline is unwinding).
    bool push_all(const T* items, std::size_t n, const std::atomic<bool>& abort) {
        std::size_t done = 0;
        bool stalled = false;
        while (done < n) {
            const std::size_t pushed = try_push(items + done, n - done);
            done += pushed;
            if (done == n) break;
            if (pushed == 0 && !stalled) {
                stalled = true;
                ++producer_.stall_episodes;
            }
            if (abort.load(std::memory_order_relaxed)) return false;
            spin_wait();
        }
        producer_.items += n;
        ++producer_.batches;
        return true;
    }

    /// Producer's end-of-stream mark; call after the final push.
    void close() { closed_.store(true, std::memory_order_release); }

    // -- consumer side -----------------------------------------------------

    /// Copy up to `max_n` items out; returns how many were available.
    std::size_t try_pop(T* out, std::size_t max_n) {
        const std::uint64_t head = head_.load(std::memory_order_relaxed);
        std::size_t avail = static_cast<std::size_t>(cached_tail_ - head);
        if (avail == 0) {
            cached_tail_ = tail_.load(std::memory_order_acquire);
            avail = static_cast<std::size_t>(cached_tail_ - head);
            if (avail == 0) return 0;
        }
        const std::size_t count = max_n < avail ? max_n : avail;
        for (std::size_t i = 0; i < count; ++i)
            out[i] = buffer_[static_cast<std::size_t>(head + i) & mask_];
        head_.store(head + count, std::memory_order_release);
        consumer_.items += count;
        ++consumer_.batches;
        consumer_.occupancy_sum += avail;
        ++consumer_.occupancy_samples;
        return count;
    }

    /// Pop at least one item unless the stream is over: returns 0 only
    /// when the ring is closed and drained, or the pipeline aborted.
    std::size_t pop_wait(T* out, std::size_t max_n, const std::atomic<bool>& abort) {
        bool stalled = false;
        for (;;) {
            if (const std::size_t n = try_pop(out, max_n)) return n;
            if (closed_.load(std::memory_order_acquire)) {
                // Close happens-after the final push; one more pop decides.
                return try_pop(out, max_n);
            }
            if (abort.load(std::memory_order_relaxed)) return 0;
            if (!stalled) {
                stalled = true;
                ++consumer_.stall_episodes;
            }
            spin_wait();
        }
    }

    /// Consumer-side fill estimate (exact at the consumer's cursor).
    std::size_t size_approx() const {
        return static_cast<std::size_t>(tail_.load(std::memory_order_acquire) -
                                        head_.load(std::memory_order_acquire));
    }

    const RingSideStats& producer_stats() const { return producer_; }
    const RingSideStats& consumer_stats() const { return consumer_; }

private:
    static void spin_wait() { std::this_thread::yield(); }

    std::size_t capacity_;
    std::uint64_t mask_;
    std::unique_ptr<T[]> buffer_;

    alignas(64) std::atomic<std::uint64_t> head_{0};  ///< consume cursor
    alignas(64) std::atomic<std::uint64_t> tail_{0};  ///< produce cursor
    std::atomic<bool> closed_{false};

    alignas(64) std::uint64_t cached_head_ = 0;  ///< producer's view of head_
    RingSideStats producer_;
    alignas(64) std::uint64_t cached_tail_ = 0;  ///< consumer's view of tail_
    RingSideStats consumer_;
};

}  // namespace wfqs::net
