#include "net/trace.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/assert.hpp"

namespace wfqs::net {

TrafficTrace TrafficTrace::record(std::vector<FlowSpec>& flows) {
    TrafficTrace trace;
    for (std::size_t f = 0; f < flows.size(); ++f) {
        trace.weights_.push_back(flows[f].weight);
        while (const auto a = flows[f].source->next())
            trace.events_.push_back(
                TraceEvent{a->time_ns, static_cast<FlowId>(f), a->size_bytes});
    }
    std::stable_sort(trace.events_.begin(), trace.events_.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                         return a.time_ns < b.time_ns;
                     });
    return trace;
}

void TrafficTrace::serialize(std::ostream& out) const {
    out << "wfqs-trace 1\nweights";
    for (const auto w : weights_) out << ' ' << w;
    out << '\n';
    for (const auto& e : events_)
        out << e.time_ns << ' ' << e.flow << ' ' << e.size_bytes << '\n';
}

TrafficTrace TrafficTrace::parse(std::istream& in) {
    TrafficTrace trace;
    std::string magic;
    int version = 0;
    in >> magic >> version;
    WFQS_REQUIRE(magic == "wfqs-trace" && version == 1, "not a wfqs trace");
    std::string keyword;
    in >> keyword;
    WFQS_REQUIRE(keyword == "weights", "trace missing weights header");
    std::string line;
    std::getline(in, line);
    std::istringstream ws(line);
    std::uint32_t w;
    while (ws >> w) {
        WFQS_REQUIRE(w > 0, "trace weight must be positive");
        trace.weights_.push_back(w);
    }
    WFQS_REQUIRE(!trace.weights_.empty(), "trace declares no flows");

    TimeNs prev = 0;
    TraceEvent e;
    while (in >> e.time_ns >> e.flow >> e.size_bytes) {
        WFQS_REQUIRE(e.flow < trace.weights_.size(), "trace event names unknown flow");
        WFQS_REQUIRE(e.size_bytes > 0, "trace packet must have positive size");
        WFQS_REQUIRE(e.time_ns >= prev, "trace events must be time-ordered");
        prev = e.time_ns;
        trace.events_.push_back(e);
    }
    WFQS_REQUIRE(in.eof(), "malformed trace line");
    return trace;
}

std::vector<FlowSpec> TrafficTrace::replay() const {
    std::vector<FlowSpec> flows;
    for (std::size_t f = 0; f < weights_.size(); ++f)
        flows.push_back({std::make_unique<TraceSource>(events_, static_cast<FlowId>(f)),
                         weights_[f]});
    return flows;
}

TraceSource::TraceSource(const std::vector<TraceEvent>& events, FlowId flow) {
    for (const auto& e : events)
        if (e.flow == flow) arrivals_.push_back(Arrival{e.time_ns, e.size_bytes});
}

std::optional<Arrival> TraceSource::next() {
    if (pos_ >= arrivals_.size()) return std::nullopt;
    return arrivals_[pos_++];
}

}  // namespace wfqs::net
