// Traffic trace record/replay.
//
// Experiments become bit-reproducible and shareable by freezing a
// generated workload to a plain-text trace (one arrival per line:
// "<time_ns> <flow> <size_bytes>") with a header carrying the flow
// weights. A TraceSource replays one flow of a loaded trace through the
// ordinary TrafficSource interface, so a captured workload can drive any
// scheduler — including one in a different process or a waveform-level
// RTL simulation outside this repository.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "net/traffic_gen.hpp"

namespace wfqs::net {

struct TraceEvent {
    TimeNs time_ns;
    FlowId flow;
    std::uint32_t size_bytes;

    friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

class TrafficTrace {
public:
    /// Capture everything the given flows generate (consumes the sources).
    static TrafficTrace record(std::vector<FlowSpec>& flows);

    /// Parse the text format; throws std::invalid_argument on malformed
    /// input.
    static TrafficTrace parse(std::istream& in);

    void serialize(std::ostream& out) const;

    const std::vector<TraceEvent>& events() const { return events_; }
    const std::vector<std::uint32_t>& weights() const { return weights_; }
    std::size_t flow_count() const { return weights_.size(); }

    /// Rebuild FlowSpecs that replay this trace (one source per flow).
    std::vector<FlowSpec> replay() const;

private:
    std::vector<TraceEvent> events_;  ///< non-decreasing time order
    std::vector<std::uint32_t> weights_;
};

/// TrafficSource view over one flow of a trace.
class TraceSource final : public TrafficSource {
public:
    TraceSource(const std::vector<TraceEvent>& events, FlowId flow);
    std::optional<Arrival> next() override;
    std::string name() const override { return "trace"; }

private:
    std::vector<Arrival> arrivals_;
    std::size_t pos_ = 0;
};

}  // namespace wfqs::net
