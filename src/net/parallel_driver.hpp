// Multi-threaded batched host pipeline: the SimDriver event loop split
// into stages connected by SPSC rings —
//
//   [gen workers] --per-flow rings--> [merge] --merged ring--> [schedule]
//                                                                  |
//                                   [egress] <--egress ring--------+
//
// with a SimResult bit-identical to the sequential SimDriver. The
// determinism argument (DESIGN.md "Host pipeline"): in the sequential
// loop, the scheduler's state only decides *when* the next pending
// arrival is consumed, never *which* — the (time, seq) priority-queue
// order, the seq numbering, and the packet-id assignment are functions of
// the arrival times alone. So a dedicated merge stage can replay the
// exact priority-queue discipline over per-flow streams generated ahead
// of time, the schedule stage consumes the identical arrival sequence,
// and the egress stage applies result/metric side effects in the
// identical emission order (so even floating-point accumulation order in
// the delay statistics is preserved).
//
// Thread budget `threads` (the calling thread included):
//   1  — delegates to the sequential SimDriver (the bit-identity anchor);
//   2  — [traffic gen + merge] thread, [schedule + egress] caller;
//   3  — adds a dedicated egress thread;
//   4+ — adds dedicated traffic-gen workers (flows split round-robin),
//        with the merge stage pulling per-flow rings.
//
// The schedule stage is the only serial one (WFQ virtual time and the
// cycle-accurate sorter are inherently sequential); everything the
// sequential loop did around it — RNG draws in the traffic sources, the
// arrival merge heap, transmission-time precomputation, per-packet
// vectors, metrics, and trace instants — moves off that critical path.
#pragma once

#include <cstdint>
#include <vector>

#include "net/sim_driver.hpp"

namespace wfqs::obs {
class HostProfiler;
}

namespace wfqs::net {

/// Host-pipeline telemetry for the last run(). A stage's stall count is
/// the number of wait episodes it entered (empty input ring or full
/// output ring) and its stall time the nanoseconds spent inside them;
/// occupancies are the mean fill level its consumer saw.
struct PipelineStats {
    unsigned threads = 1;
    std::uint64_t gen_stalls = 0;     ///< gen workers blocked on full flow rings
    std::uint64_t merge_stalls = 0;   ///< merge starved of arrivals or blocked downstream
    std::uint64_t sched_stalls = 0;   ///< schedule starved of merged arrivals or blocked on egress
    std::uint64_t egress_stalls = 0;  ///< egress starved of events
    std::uint64_t gen_stall_ns = 0;
    std::uint64_t merge_stall_ns = 0;
    std::uint64_t sched_stall_ns = 0;
    std::uint64_t egress_stall_ns = 0;
    double flow_ring_occupancy = 0.0;
    double merged_ring_occupancy = 0.0;
    double egress_ring_occupancy = 0.0;
    std::uint64_t sched_batches = 0;  ///< merged-ring refills in the schedule stage
    std::uint64_t sched_items = 0;
    /// Final per-wakeup drain cap of the schedule stage's autotuner: it
    /// grows toward the buffer size while refills come back full (a deep
    /// ring) and shrinks while they come back starved, so the cap tracks
    /// the occupancy the consumer actually sees.
    std::uint64_t sched_batch_limit = 0;

    double avg_sched_batch() const {
        return sched_batches == 0 ? 0.0
                                  : static_cast<double>(sched_items) /
                                        static_cast<double>(sched_batches);
    }
};

class ParallelSimDriver {
public:
    /// `threads` counts the calling thread; 0 and 1 both mean sequential.
    ParallelSimDriver(std::uint64_t link_rate_bps, unsigned threads);

    /// Same `net.*` metrics as SimDriver::attach_metrics, plus the
    /// `host.pipeline.*` gauges (per-stage stalls and stall time, ring
    /// occupancy, thread count) and the `host.pipeline.batch_size`
    /// histogram of merged-ring batch sizes seen by the schedule stage
    /// (the --threads 1 delegate path records one unit batch per
    /// arrival, so the histogram is populated in every mode).
    void attach_metrics(obs::MetricsRegistry& registry);

    /// Attach a per-stage profiler for the next run(). The driver sets
    /// stage thread counts, registers ring-occupancy probes, and runs
    /// the profiler's sampler for the duration of run() — per-stage
    /// busy/stall timelines with zero hot-path cost beyond the ring
    /// stats the pipeline already keeps (sequential delegate runs use
    /// SampledTimer stage sections instead). One profiler per run.
    void attach_profiler(obs::HostProfiler* profiler) { profiler_ = profiler; }

    /// Bit-identical to SimDriver::run on the same flows: identical
    /// records, arrivals, counters, and metric values. Flow sources are
    /// consumed from gen-stage threads (exclusively — callers must not
    /// touch `flows` during the run).
    SimResult run(scheduler::Scheduler& sched, std::vector<FlowSpec>& flows);

    const PipelineStats& pipeline_stats() const { return stats_; }

private:
    void publish_metrics();

    std::uint64_t rate_;
    unsigned threads_;
    obs::MetricsRegistry* metrics_ = nullptr;
    obs::HostProfiler* profiler_ = nullptr;
    PipelineStats stats_;
};

/// Order-sensitive FNV-1a fingerprint over every field of a SimResult.
/// Equal fingerprints across thread counts certify bit-identical runs
/// (used by the benches and perf_smoke to gate determinism from JSON).
std::uint64_t result_fingerprint(const SimResult& r);

/// Field-by-field equality (the lockstep tests' byte-for-byte check).
bool identical_results(const SimResult& a, const SimResult& b);

}  // namespace wfqs::net
