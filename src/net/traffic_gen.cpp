#include "net/traffic_gen.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace wfqs::net {
namespace {

TimeNs seconds_to_ns(double s) {
    return static_cast<TimeNs>(s * 1e9);
}

}  // namespace

// ------------------------------------------------------------------- CBR

CbrSource::CbrSource(std::uint64_t rate_bps, std::uint32_t packet_bytes,
                     TimeNs start_ns, TimeNs end_ns)
    : interval_(transmission_ns(packet_bytes, rate_bps)),
      packet_bytes_(packet_bytes),
      next_(start_ns),
      end_(end_ns) {
    WFQS_REQUIRE(rate_bps > 0 && packet_bytes > 0, "CBR needs positive rate and size");
    WFQS_REQUIRE(interval_ > 0, "CBR rate too high for the packet size");
}

std::optional<Arrival> CbrSource::next() {
    if (next_ >= end_) return std::nullopt;
    const Arrival a{next_, packet_bytes_};
    next_ += interval_;
    return a;
}

// --------------------------------------------------------------- Poisson

PoissonSource::PoissonSource(double rate_pps, std::uint32_t min_bytes,
                             std::uint32_t max_bytes, TimeNs end_ns, std::uint64_t seed)
    : rate_pps_(rate_pps),
      min_bytes_(min_bytes),
      max_bytes_(max_bytes),
      end_(end_ns),
      rng_(seed) {
    WFQS_REQUIRE(rate_pps > 0.0, "Poisson rate must be positive");
    WFQS_REQUIRE(min_bytes > 0 && min_bytes <= max_bytes, "bad packet size range");
}

std::optional<Arrival> PoissonSource::next() {
    t_ += seconds_to_ns(rng_.next_exponential(1.0 / rate_pps_));
    if (t_ >= end_) return std::nullopt;
    const auto size = static_cast<std::uint32_t>(rng_.next_range(min_bytes_, max_bytes_));
    return Arrival{t_, size};
}

// ---------------------------------------------------------- on-off Pareto

OnOffParetoSource::OnOffParetoSource(std::uint64_t peak_rate_bps,
                                     std::uint32_t packet_bytes, double mean_on_s,
                                     double mean_off_s, double alpha, TimeNs end_ns,
                                     std::uint64_t seed)
    : peak_rate_(peak_rate_bps),
      packet_bytes_(packet_bytes),
      mean_on_s_(mean_on_s),
      mean_off_s_(mean_off_s),
      alpha_(alpha),
      end_(end_ns),
      rng_(seed) {
    WFQS_REQUIRE(peak_rate_bps > 0 && packet_bytes > 0, "bad on-off source config");
    WFQS_REQUIRE(alpha > 1.0, "Pareto alpha must exceed 1 for a finite mean");
}

std::optional<Arrival> OnOffParetoSource::next() {
    const TimeNs gap = transmission_ns(packet_bytes_, peak_rate_);
    if (t_ >= burst_end_) {
        // Draw the next OFF gap and ON burst. Pareto with mean m and shape
        // a has xm = m (a-1)/a.
        const double off = rng_.next_exponential(mean_off_s_);
        const double xm = mean_on_s_ * (alpha_ - 1.0) / alpha_;
        const double on = rng_.next_pareto(alpha_, xm);
        t_ += seconds_to_ns(off);
        burst_end_ = t_ + seconds_to_ns(on);
    }
    if (t_ >= end_) return std::nullopt;
    const Arrival a{t_, packet_bytes_};
    t_ += gap;
    return a;
}

// ------------------------------------------------------------------ VoIP

VoipSource::VoipSource(TimeNs end_ns, std::uint64_t seed, std::uint32_t frame_bytes)
    : frame_bytes_(frame_bytes), end_(end_ns), rng_(seed) {}

std::optional<Arrival> VoipSource::next() {
    constexpr TimeNs kFrameInterval = 20'000'000;  // 20 ms
    if (t_ == 0 && spurt_end_ == 0) {
        // The call opens with a talk spurt.
        spurt_end_ = seconds_to_ns(rng_.next_exponential(1.0));
    }
    if (t_ >= spurt_end_) {
        // Mean 1.0 s talk spurts separated by mean 1.35 s silences
        // (classic Brady voice model).
        t_ = spurt_end_ + seconds_to_ns(rng_.next_exponential(1.35));
        spurt_end_ = t_ + seconds_to_ns(rng_.next_exponential(1.0));
    }
    if (t_ >= end_) return std::nullopt;
    const Arrival a{t_, frame_bytes_};
    t_ += kFrameInterval;
    return a;
}

// ----------------------------------------------------------------- video

VideoSource::VideoSource(double fps, std::uint32_t mean_frame_bytes,
                         std::uint32_t mtu_bytes, TimeNs end_ns, std::uint64_t seed)
    : frame_interval_(seconds_to_ns(1.0 / fps)),
      mean_frame_bytes_(mean_frame_bytes),
      mtu_bytes_(mtu_bytes),
      end_(end_ns),
      rng_(seed) {
    WFQS_REQUIRE(fps > 0.0 && mean_frame_bytes > 0 && mtu_bytes > 0,
                 "bad video source config");
}

std::optional<Arrival> VideoSource::next() {
    while (true) {
        if (remaining_in_frame_ == 0) {
            if (frame_time_ >= end_) return std::nullopt;
            // Pareto frame sizes (shape 1.8) around the mean.
            const double xm = mean_frame_bytes_ * (1.8 - 1.0) / 1.8;
            remaining_in_frame_ = static_cast<std::uint32_t>(
                std::min(rng_.next_pareto(1.8, xm), 64.0 * mean_frame_bytes_));
            fragment_index_ = 0;
            frame_time_ += frame_interval_;
        }
        const TimeNs t = frame_time_ - frame_interval_ +
                         static_cast<TimeNs>(fragment_index_) * 2'000;  // 2 µs spacing
        if (t >= end_) return std::nullopt;
        const std::uint32_t chunk = std::min(remaining_in_frame_, mtu_bytes_);
        remaining_in_frame_ -= chunk;
        ++fragment_index_;
        if (chunk == 0) continue;
        return Arrival{t, chunk};
    }
}

// -------------------------------------------------------------- profiles

std::vector<FlowSpec> make_mixed_profile(TimeNs end_ns, std::uint64_t seed) {
    std::vector<FlowSpec> flows;
    flows.push_back({std::make_unique<VoipSource>(end_ns, seed + 1), 8});
    flows.push_back({std::make_unique<VoipSource>(end_ns, seed + 2), 8});
    flows.push_back({std::make_unique<VideoSource>(30.0, 12000, 1500, end_ns, seed + 3), 16});
    flows.push_back(
        {std::make_unique<CbrSource>(2'000'000, 500, 0, end_ns), 4});
    flows.push_back({std::make_unique<PoissonSource>(800.0, 64, 1500, end_ns, seed + 4), 2});
    flows.push_back({std::make_unique<OnOffParetoSource>(10'000'000, 1500, 0.05, 0.2,
                                                         1.5, end_ns, seed + 5),
                     1});
    flows.push_back({std::make_unique<OnOffParetoSource>(10'000'000, 1500, 0.05, 0.2,
                                                         1.5, end_ns, seed + 6),
                     1});
    return flows;
}

std::vector<FlowSpec> make_voip_heavy_profile(TimeNs end_ns, std::uint64_t seed) {
    std::vector<FlowSpec> flows;
    for (int i = 0; i < 12; ++i)
        flows.push_back({std::make_unique<VoipSource>(end_ns, seed + i), 8});
    flows.push_back({std::make_unique<OnOffParetoSource>(50'000'000, 1500, 0.1, 0.1,
                                                         1.5, end_ns, seed + 100),
                     1});
    return flows;
}

}  // namespace wfqs::net
