#include "net/sim_driver.hpp"

#include <algorithm>
#include <queue>

#include "common/assert.hpp"
#include "fault/errors.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/profiler.hpp"
#include "obs/tracer.hpp"

namespace wfqs::net {
namespace {

constexpr double ns_to_trace_us(TimeNs t) { return static_cast<double>(t) / 1000.0; }

struct PendingArrival {
    TimeNs time;
    std::size_t source;  ///< flow index
    std::uint32_t size_bytes;
    std::uint64_t seq;   ///< tie-break: stable across sources

    bool operator>(const PendingArrival& o) const {
        return time != o.time ? time > o.time : seq > o.seq;
    }
};

}  // namespace

SimDriver::SimDriver(std::uint64_t link_rate_bps) : rate_(link_rate_bps) {
    WFQS_REQUIRE(link_rate_bps > 0, "link rate must be positive");
}

void SimDriver::attach_metrics(obs::MetricsRegistry& registry) {
    metrics_ = &registry;
    // Create the metrics up front so an idle run still exports them.
    registry.counter("net.offered_packets");
    registry.counter("net.dropped_packets");
    registry.counter("net.delivered_packets");
    registry.counter("net.sorter_faults");
    // Delay distribution: 0–10 ms in 10 µs bins (outliers clamp into the
    // last bin; exact min/mean/max come from the embedded RunningStats).
    registry.histogram("net.delay_us", 0.0, 10'000.0, 1000);
}

SimResult SimDriver::run(scheduler::Scheduler& sched, std::vector<FlowSpec>& flows) {
    SimResult result;
    // Resolve metric handles once; the per-packet path must not pay a
    // name lookup.
    obs::Counter* m_offered = metrics_ ? &metrics_->counter("net.offered_packets") : nullptr;
    obs::Counter* m_dropped = metrics_ ? &metrics_->counter("net.dropped_packets") : nullptr;
    obs::Counter* m_delivered =
        metrics_ ? &metrics_->counter("net.delivered_packets") : nullptr;
    obs::Counter* m_faults = metrics_ ? &metrics_->counter("net.sorter_faults") : nullptr;
    obs::CycleHistogram* m_delay = metrics_ ? &metrics_->histogram("net.delay_us") : nullptr;
    // Stage-section attribution (SampledTimer: 1-in-64 brackets, charged
    // x64); disabled — a null target, one branch per scope — without a
    // profiler.
    using Stage = obs::HostProfiler::Stage;
    obs::SampledTimer gen_timer(profiler_ ? &profiler_->stage(Stage::kGen) : nullptr);
    obs::SampledTimer sched_timer(profiler_ ? &profiler_->stage(Stage::kSched)
                                            : nullptr);
    obs::SampledTimer egress_timer(profiler_ ? &profiler_->stage(Stage::kEgress)
                                             : nullptr);
    // Item counts flush to the profiler in blocks so the per-op cost is a
    // local increment, not an atomic RMW.
    constexpr std::uint64_t kItemFlush = 1024;
    std::uint64_t gen_items = 0, sched_items = 0, egress_items = 0;
    const auto flush_items = [&] {
        if (!profiler_) return;
        profiler_->stage(Stage::kGen).add_items(gen_items);
        profiler_->stage(Stage::kSched).add_items(sched_items);
        profiler_->stage(Stage::kEgress).add_items(egress_items);
        gen_items = sched_items = egress_items = 0;
    };
    std::priority_queue<PendingArrival, std::vector<PendingArrival>,
                        std::greater<PendingArrival>>
        arrivals;
    std::uint64_t seq = 0;

    for (std::size_t i = 0; i < flows.size(); ++i) {
        const net::FlowId id = sched.add_flow(flows[i].weight);
        WFQS_ASSERT_MSG(id == i, "scheduler must number flows sequentially");
        if (const auto a = flows[i].source->next())
            arrivals.push(PendingArrival{a->time_ns, i, a->size_bytes, seq++});
    }

    std::uint64_t next_packet_id = 0;
    TimeNs link_free_at = 0;
    TimeNs now = 0;

    // Fault recovery: a FaultError from the scheduler's sorter is survivable
    // when the scheduler has a scrub path — recover, note a trace instant,
    // and retry the operation. Recovery that fails (or faults that strike
    // faster than scrubbing can keep up with) propagate to the caller.
    constexpr int kMaxRecoveries = 3;
    const auto note_fault = [&](TimeNs at) {
        ++result.sorter_faults;
        WFQS_TRACE_INSTANT("sorter-fault", "net", ns_to_trace_us(at));
        obs::flight_record(obs::FlightEventKind::kFault, static_cast<double>(at));
        if (m_faults) m_faults->inc();
    };
    const auto note_recovery = [](TimeNs at, int attempt) {
        // a = retry attempt (1-based): repeated recoveries at one
        // timestamp read as an escalating sequence in the flight dump.
        obs::flight_record(obs::FlightEventKind::kRecovery,
                           static_cast<double>(at), attempt + 1);
    };

    auto deliver_next_arrival = [&] {
        const PendingArrival a = [&] {
            auto scope = gen_timer.time();
            const PendingArrival top = arrivals.top();
            arrivals.pop();
            if (const auto next = flows[top.source].source->next()) {
                WFQS_ASSERT_MSG(next->time_ns >= top.time,
                                "traffic source went backwards in time");
                arrivals.push(PendingArrival{next->time_ns, top.source,
                                             next->size_bytes, seq++});
            }
            return top;
        }();
        now = std::max(now, a.time);
        const Packet pkt{next_packet_id++, static_cast<FlowId>(a.source),
                         a.size_bytes, a.time};
        {
            // Arrival-side result/metric recording is egress-stage work in
            // the pipeline; attribute it the same way here.
            auto scope = egress_timer.time();
            result.all_arrivals.push_back(pkt);
            ++result.offered_packets;
            WFQS_TRACE_INSTANT("arrival", "net", ns_to_trace_us(a.time));
            if (m_offered) m_offered->inc();
        }
        if (profiler_ && ++gen_items % kItemFlush == 0) flush_items();
        bool accepted = false;
        for (int attempt = 0;; ++attempt) {
            try {
                auto scope = sched_timer.time();
                accepted = sched.enqueue(pkt, a.time);
                break;
            } catch (const fault::FaultError&) {
                note_fault(a.time);
                if (attempt >= kMaxRecoveries || !sched.recover()) throw;
                note_recovery(a.time, attempt);
            }
        }
        if (!accepted) {
            ++result.dropped_packets;
            WFQS_TRACE_INSTANT("drop", "net", ns_to_trace_us(a.time));
            if (m_dropped) m_dropped->inc();
        }
    };

    while (!arrivals.empty() || sched.has_packets()) {
        if (!sched.has_packets()) {
            deliver_next_arrival();
            continue;
        }
        const TimeNs service_start = std::max(link_free_at, now);
        // Arrivals up to the service decision take part in it.
        if (!arrivals.empty() && arrivals.top().time <= service_start) {
            deliver_next_arrival();
            continue;
        }
        std::optional<Packet> pkt;
        bool faulted = false;
        for (int attempt = 0;; ++attempt) {
            try {
                auto scope = sched_timer.time();
                pkt = sched.dequeue(service_start);
                break;
            } catch (const fault::FaultError&) {
                faulted = true;
                note_fault(service_start);
                if (attempt >= kMaxRecoveries || !sched.recover()) throw;
                note_recovery(service_start, attempt);
            }
        }
        if (!pkt) {
            // A recovery can legally shrink the queue (a rebuild lost the
            // entry that was about to be served); re-evaluate the loop.
            WFQS_ASSERT_MSG(faulted, "scheduler claimed packets but gave none");
            continue;
        }
        if (profiler_) ++sched_items;
        {
            auto scope = egress_timer.time();
            const TimeNs done =
                service_start + transmission_ns(pkt->size_bytes, rate_);
            result.records.push_back(PacketRecord{*pkt, service_start, done});
            WFQS_TRACE_INSTANT("departure", "net", ns_to_trace_us(done));
            if (m_delivered) {
                m_delivered->inc();
                m_delay->record(static_cast<double>(done - pkt->arrival_ns) /
                                1000.0);
            }
            result.last_departure_ns = done;
            link_free_at = done;
        }
        if (profiler_) ++egress_items;
    }
    flush_items();
    return result;
}

}  // namespace wfqs::net
