#include "net/sim_driver.hpp"

#include <algorithm>
#include <queue>

#include "common/assert.hpp"

namespace wfqs::net {
namespace {

struct PendingArrival {
    TimeNs time;
    std::size_t source;  ///< flow index
    std::uint32_t size_bytes;
    std::uint64_t seq;   ///< tie-break: stable across sources

    bool operator>(const PendingArrival& o) const {
        return time != o.time ? time > o.time : seq > o.seq;
    }
};

}  // namespace

SimDriver::SimDriver(std::uint64_t link_rate_bps) : rate_(link_rate_bps) {
    WFQS_REQUIRE(link_rate_bps > 0, "link rate must be positive");
}

SimResult SimDriver::run(scheduler::Scheduler& sched, std::vector<FlowSpec>& flows) {
    SimResult result;
    std::priority_queue<PendingArrival, std::vector<PendingArrival>,
                        std::greater<PendingArrival>>
        arrivals;
    std::uint64_t seq = 0;

    for (std::size_t i = 0; i < flows.size(); ++i) {
        const net::FlowId id = sched.add_flow(flows[i].weight);
        WFQS_ASSERT_MSG(id == i, "scheduler must number flows sequentially");
        if (const auto a = flows[i].source->next())
            arrivals.push(PendingArrival{a->time_ns, i, a->size_bytes, seq++});
    }

    std::uint64_t next_packet_id = 0;
    TimeNs link_free_at = 0;
    TimeNs now = 0;

    auto deliver_next_arrival = [&] {
        const PendingArrival a = arrivals.top();
        arrivals.pop();
        now = std::max(now, a.time);
        const Packet pkt{next_packet_id++, static_cast<FlowId>(a.source),
                         a.size_bytes, a.time};
        result.all_arrivals.push_back(pkt);
        ++result.offered_packets;
        if (!sched.enqueue(pkt, a.time)) ++result.dropped_packets;
        if (const auto next = flows[a.source].source->next()) {
            WFQS_ASSERT_MSG(next->time_ns >= a.time,
                            "traffic source went backwards in time");
            arrivals.push(PendingArrival{next->time_ns, a.source, next->size_bytes,
                                         seq++});
        }
    };

    while (!arrivals.empty() || sched.has_packets()) {
        if (!sched.has_packets()) {
            deliver_next_arrival();
            continue;
        }
        const TimeNs service_start = std::max(link_free_at, now);
        // Arrivals up to the service decision take part in it.
        if (!arrivals.empty() && arrivals.top().time <= service_start) {
            deliver_next_arrival();
            continue;
        }
        const auto pkt = sched.dequeue(service_start);
        WFQS_ASSERT_MSG(pkt.has_value(), "scheduler claimed packets but gave none");
        const TimeNs done = service_start + transmission_ns(pkt->size_bytes, rate_);
        result.records.push_back(PacketRecord{*pkt, service_start, done});
        result.last_departure_ns = done;
        link_free_at = done;
    }
    return result;
}

}  // namespace wfqs::net
