// Discrete-event loop tying traffic sources, a scheduler, and the output
// link together: arrivals are enqueued in time order; whenever the link
// is free and the scheduler holds packets, the next one is transmitted at
// the link rate. Produces the per-packet records the analysis module
// consumes.
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.hpp"
#include "net/traffic_gen.hpp"
#include "scheduler/scheduler.hpp"

namespace wfqs::net {

struct SimResult {
    std::vector<PacketRecord> records;    ///< completed transmissions
    std::vector<Packet> all_arrivals;     ///< every offered packet (incl. drops)
    std::uint64_t offered_packets = 0;
    std::uint64_t dropped_packets = 0;
    TimeNs last_departure_ns = 0;
};

class SimDriver {
public:
    explicit SimDriver(std::uint64_t link_rate_bps);

    /// Registers every flow with the scheduler (in order — flow ids are
    /// the indices of `flows`) and runs to completion: all arrivals
    /// delivered and the scheduler drained.
    SimResult run(scheduler::Scheduler& sched, std::vector<FlowSpec>& flows);

private:
    std::uint64_t rate_;
};

}  // namespace wfqs::net
