// Discrete-event loop tying traffic sources, a scheduler, and the output
// link together: arrivals are enqueued in time order; whenever the link
// is free and the scheduler holds packets, the next one is transmitted at
// the link rate. Produces the per-packet records the analysis module
// consumes.
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.hpp"
#include "net/traffic_gen.hpp"
#include "obs/metrics.hpp"
#include "scheduler/scheduler.hpp"

namespace wfqs::obs {
class HostProfiler;
}

namespace wfqs::net {

struct SimResult {
    std::vector<PacketRecord> records;    ///< completed transmissions
    std::vector<Packet> all_arrivals;     ///< every offered packet (incl. drops)
    std::uint64_t offered_packets = 0;
    std::uint64_t dropped_packets = 0;
    std::uint64_t sorter_faults = 0;      ///< FaultErrors recovered in-run
    TimeNs last_departure_ns = 0;
};

class SimDriver {
public:
    explicit SimDriver(std::uint64_t link_rate_bps);

    /// Count arrivals/drops/departures and record the per-packet delay
    /// distribution (microseconds) into `registry` under `net.*` during
    /// run(). The registry must outlive the driver's last run.
    void attach_metrics(obs::MetricsRegistry& registry);

    /// Attribute the sequential loop's time to gen/sched/egress stage
    /// sections with 1-in-64 SampledTimer brackets (see obs::HostProfiler;
    /// this is what bounds the host pipeline's achievable speedup). The
    /// caller owns the profiler's sampling lifecycle; null detaches.
    void set_profiler(obs::HostProfiler* profiler) { profiler_ = profiler; }

    /// Registers every flow with the scheduler (in order — flow ids are
    /// the indices of `flows`) and runs to completion: all arrivals
    /// delivered and the scheduler drained. When a Tracer is installed
    /// (obs::Tracer::install), every arrival, drop, and departure is
    /// emitted as an instant event stamped with packet time
    /// (1 trace-us = 1 simulated us).
    SimResult run(scheduler::Scheduler& sched, std::vector<FlowSpec>& flows);

private:
    std::uint64_t rate_;
    obs::MetricsRegistry* metrics_ = nullptr;
    obs::HostProfiler* profiler_ = nullptr;
};

}  // namespace wfqs::net
