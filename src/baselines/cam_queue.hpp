// Content-addressable memory models for Table I.
//
// Binary CAM: one associative probe answers "is value v stored?" in one
// access, but finding the *minimum* needs an iterative sweep, probing
// candidate values one at a time from the last known minimum upward —
// "very slow" (§II-D), worst case O(R).
//
// TCAM: masked (ternary) probes answer "is any value with this prefix
// stored?", enabling a bitwise binary search for the minimum: W probes
// for W-bit tags.
//
// Both are search-model structures: insert is one access, the lookup
// cost lands on the serving path. Tags must be < range.
#pragma once

#include <cstdint>
#include <deque>
#include <set>
#include <vector>

#include "baselines/tag_queue.hpp"

namespace wfqs::baselines {

class BinaryCamQueue final : public TagQueue {
public:
    explicit BinaryCamQueue(unsigned range_bits = 12);

    void insert(std::uint64_t tag, std::uint32_t payload) override;
    std::optional<QueueEntry> pop_min() override;
    std::optional<QueueEntry> peek_min() override;

    std::size_t size() const override { return size_; }
    std::string name() const override { return "binary CAM"; }
    std::string model() const override { return "search"; }
    std::string complexity() const override { return "O(R) probes"; }

private:
    std::uint64_t range_;
    std::vector<std::deque<std::uint32_t>> by_value_;  ///< FIFO per tag value
    std::uint64_t sweep_hint_ = 0;  ///< minimum can only be at or above this
    std::size_t size_ = 0;
};

class TcamQueue final : public TagQueue {
public:
    explicit TcamQueue(unsigned range_bits = 12);

    void insert(std::uint64_t tag, std::uint32_t payload) override;
    std::optional<QueueEntry> pop_min() override;
    std::optional<QueueEntry> peek_min() override;

    std::size_t size() const override { return size_; }
    std::string name() const override { return "TCAM"; }
    std::string model() const override { return "search"; }
    std::string complexity() const override { return "O(W) probes"; }

private:
    /// One masked probe: any stored value in [prefix, prefix + 2^bits)?
    bool probe(std::uint64_t prefix, unsigned low_bits);

    unsigned range_bits_;
    std::uint64_t range_;
    std::multiset<std::uint64_t> values_;  ///< probe oracle (hardware: the TCAM array)
    std::vector<std::deque<std::uint32_t>> by_value_;
    std::size_t size_ = 0;
};

}  // namespace wfqs::baselines
