// Two-dimensional calendar queue (TCQ, Francini & Chiussi [16]) — a
// two-level ring over a bounded tag range: D "day" buckets, each holding
// H per-value slots (D·H = range). Insert is O(1); serving scans at most
// D day counters plus H slots, i.e. O(2·sqrt(R)) worst-case accesses when
// D = H = sqrt(R). The paper notes it "produces a degradation of the
// delay guarantees provided by the WFQ algorithm" because the tag range
// (and hence timestamp precision) must be kept small for the scan bound.
//
// Tags must be < range (bounded-universe structure; see tag_queue.hpp).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "baselines/tag_queue.hpp"

namespace wfqs::baselines {

class TcqQueue final : public TagQueue {
public:
    /// `range_bits`: tag universe is [0, 2^range_bits).
    explicit TcqQueue(unsigned range_bits = 12);

    void insert(std::uint64_t tag, std::uint32_t payload) override;
    std::optional<QueueEntry> pop_min() override;
    std::optional<QueueEntry> peek_min() override;

    std::size_t size() const override { return size_; }
    std::string name() const override { return "2-D calendar queue (TCQ)"; }
    std::string model() const override { return "search"; }
    std::string complexity() const override { return "O(2*sqrt(R))"; }

private:
    std::uint64_t range_;
    std::size_t days_;         ///< first-level buckets
    std::size_t slots_per_day_;
    std::vector<std::uint32_t> day_occupancy_;
    std::vector<std::deque<std::uint32_t>> slots_;  ///< payload FIFO per value
    std::size_t size_ = 0;
};

}  // namespace wfqs::baselines
