// The "binning" technique from the CBFQ hardware implementation [12] —
// the paper's §II-B verdict: "this method is unsatisfactory because it
// aggregates values together in groups and is inherently inaccurate."
//
// K bins partition the tag range; each bin is a FIFO. Serving takes the
// FIFO head of the first non-empty bin, which is generally *not* the
// smallest tag in that bin — the inaccuracy the A3 bench quantifies.
//
// Tags must be < range (bounded-universe structure).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "baselines/tag_queue.hpp"

namespace wfqs::baselines {

class BinningQueue final : public TagQueue {
public:
    BinningQueue(unsigned range_bits = 12, std::size_t bins = 64);

    void insert(std::uint64_t tag, std::uint32_t payload) override;
    std::optional<QueueEntry> pop_min() override;
    std::optional<QueueEntry> peek_min() override;

    std::size_t size() const override { return size_; }
    std::string name() const override { return "binning (CBFQ)"; }
    std::string model() const override { return "search"; }
    std::string complexity() const override { return "O(K bins)"; }
    bool exact() const override { return false; }

    std::size_t bin_count() const { return bins_.size(); }

private:
    std::uint64_t range_;
    std::uint64_t bin_width_;
    std::vector<std::deque<QueueEntry>> bins_;
    std::size_t size_ = 0;
};

}  // namespace wfqs::baselines
