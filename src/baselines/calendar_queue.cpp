#include "baselines/calendar_queue.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace wfqs::baselines {

CalendarQueue::CalendarQueue(std::size_t initial_buckets, std::uint64_t initial_width)
    : buckets_(initial_buckets), width_(initial_width) {
    WFQS_REQUIRE(initial_buckets >= 2, "calendar needs at least two buckets");
    WFQS_REQUIRE(initial_width >= 1, "bucket width must be positive");
}

void CalendarQueue::insert_into_bucket(std::uint64_t tag, std::uint32_t payload) {
    auto& bucket = buckets_[bucket_of(tag)];
    auto it = bucket.begin();
    while (it != bucket.end()) {
        touch();
        if (it->tag > tag) break;
        ++it;
    }
    bucket.insert(it, QueueEntry{tag, payload});
    touch();
}

void CalendarQueue::insert(std::uint64_t tag, std::uint32_t payload) {
    OpScope op(*this, OpScope::Kind::Insert);
    insert_into_bucket(tag, payload);
    ++size_;
    if (size_ == 1) {
        // Re-anchor the calendar on the sole entry.
        cursor_ = bucket_of(tag);
        day_start_ = tag / width_ * width_;
    } else if (tag < day_start_) {
        // An earlier tag re-anchors the serving position backwards.
        cursor_ = bucket_of(tag);
        day_start_ = tag / width_ * width_;
    }
    // Inside the op bracket: Brown's copy operation touches every stored
    // entry, and that cost belongs to the insert that triggered it —
    // worst_insert_accesses is the Table I headline for this structure.
    maybe_resize();
}

void CalendarQueue::maybe_resize() {
    const std::size_t n = buckets_.size();
    if (size_ > 2 * n || (size_ < n / 2 && n > 8)) {
        ++resizes_;
        // Re-estimate the bucket width from the current spread and rebuild
        // (Brown's copy operation) — every entry is touched.
        std::uint64_t lo = ~std::uint64_t{0}, hi = 0;
        std::vector<QueueEntry> all;
        all.reserve(size_);
        for (auto& b : buckets_) {
            for (const auto& e : b) {
                lo = std::min(lo, e.tag);
                hi = std::max(hi, e.tag);
                all.push_back(e);
                touch();
            }
            b.clear();
        }
        const std::size_t new_n = std::max<std::size_t>(8, size_);
        width_ = std::max<std::uint64_t>(1, (hi - lo) / new_n + 1);
        buckets_.assign(new_n, {});
        for (const auto& e : all) insert_into_bucket(e.tag, e.payload);
        cursor_ = all.empty() ? 0 : bucket_of(lo);
        day_start_ = all.empty() ? 0 : lo / width_ * width_;
    }
}

std::optional<QueueEntry> CalendarQueue::direct_search_pop() {
    // Slow path: scan every bucket head for the global minimum.
    std::size_t best_bucket = buckets_.size();
    std::uint64_t best_tag = ~std::uint64_t{0};
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        touch();
        if (!buckets_[i].empty() && buckets_[i].front().tag < best_tag) {
            best_tag = buckets_[i].front().tag;
            best_bucket = i;
        }
    }
    WFQS_ASSERT(best_bucket < buckets_.size());
    const QueueEntry e = buckets_[best_bucket].front();
    buckets_[best_bucket].pop_front();
    touch();
    --size_;
    cursor_ = best_bucket;
    day_start_ = e.tag / width_ * width_;
    return e;
}

std::optional<QueueEntry> CalendarQueue::pop_min() {
    if (size_ == 0) return std::nullopt;
    OpScope op(*this, OpScope::Kind::Pop);
    // Walk the calendar: for each day, serve the cursor bucket if its head
    // falls inside the day; after a whole empty year, fall back to direct
    // search.
    for (std::size_t steps = 0; steps < buckets_.size(); ++steps) {
        auto& bucket = buckets_[cursor_];
        touch();
        if (!bucket.empty() && bucket.front().tag < day_start_ + width_) {
            const QueueEntry e = bucket.front();
            bucket.pop_front();
            --size_;
            return e;
        }
        cursor_ = (cursor_ + 1) % buckets_.size();
        day_start_ += width_;
    }
    return direct_search_pop();
}

std::optional<QueueEntry> CalendarQueue::peek_min() {
    if (size_ == 0) return std::nullopt;
    // Non-destructive variant of pop_min's scan (no access accounting —
    // the paper's search-model critique applies to the serving path).
    std::uint64_t best = ~std::uint64_t{0};
    std::optional<QueueEntry> found;
    for (const auto& b : buckets_) {
        if (!b.empty() && b.front().tag < best) {
            best = b.front().tag;
            found = b.front();
        }
    }
    return found;
}

}  // namespace wfqs::baselines
