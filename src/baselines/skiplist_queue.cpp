#include "baselines/skiplist_queue.hpp"

namespace wfqs::baselines {

SkiplistQueue::SkiplistQueue(std::uint64_t seed) : rng_(seed) {
    head_.next.assign(kMaxLevel, nullptr);
}

SkiplistQueue::~SkiplistQueue() {
    Node* n = head_.next[0];
    while (n != nullptr) {
        Node* next = n->next[0];
        delete n;
        n = next;
    }
}

int SkiplistQueue::random_level() {
    int lvl = 1;
    while (lvl < kMaxLevel && rng_.next_bool(0.5)) ++lvl;
    return lvl;
}

void SkiplistQueue::insert(std::uint64_t tag, std::uint32_t payload) {
    OpScope op(*this, OpScope::Kind::Insert);
    std::vector<Node*> update(kMaxLevel, &head_);
    Node* cur = &head_;
    for (int l = level_ - 1; l >= 0; --l) {
        // "<=" keeps FIFO order within equal tags: new duplicates land
        // after existing ones.
        while (cur->next[l] != nullptr) {
            touch();
            if (cur->next[l]->entry.tag > tag) break;
            cur = cur->next[l];
        }
        update[l] = cur;
    }
    const int lvl = random_level();
    if (lvl > level_) level_ = lvl;
    auto* node = new Node{QueueEntry{tag, payload}, std::vector<Node*>(lvl, nullptr)};
    for (int l = 0; l < lvl; ++l) {
        node->next[l] = update[l]->next[l];
        update[l]->next[l] = node;
        touch(2);  // rewrite predecessor pointer + new node pointer
    }
    ++size_;
}

std::optional<QueueEntry> SkiplistQueue::pop_min() {
    Node* first = head_.next[0];
    if (first == nullptr) return std::nullopt;
    OpScope op(*this, OpScope::Kind::Pop);
    touch();
    const QueueEntry e = first->entry;
    for (int l = 0; l < level_; ++l) {
        if (head_.next[l] == first) {
            head_.next[l] = first->next[l];
            touch();
        }
    }
    delete first;
    --size_;
    return e;
}

std::optional<QueueEntry> SkiplistQueue::peek_min() {
    if (head_.next[0] == nullptr) return std::nullopt;
    return head_.next[0]->entry;
}

}  // namespace wfqs::baselines
