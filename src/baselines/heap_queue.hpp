// Binary-heap priority queue — the standard software baseline of Table I
// ("queue/heap methods ... generally limited to O(log N)").
//
// Stability: ties are broken by insertion sequence number so equal tags
// serve FIFO, matching the sorter's duplicate policy and making
// departure-order equivalence testable.
#pragma once

#include <cstdint>
#include <vector>

#include "baselines/tag_queue.hpp"

namespace wfqs::baselines {

class HeapTagQueue final : public TagQueue {
public:
    void insert(std::uint64_t tag, std::uint32_t payload) override;
    std::optional<QueueEntry> pop_min() override;
    std::optional<QueueEntry> peek_min() override;

    std::size_t size() const override { return heap_.size(); }
    std::string name() const override { return "binary heap"; }
    std::string model() const override { return "sort"; }
    std::string complexity() const override { return "O(log N)"; }

private:
    struct Node {
        std::uint64_t tag;
        std::uint64_t seq;
        std::uint32_t payload;
        bool operator<(const Node& o) const {
            return tag != o.tag ? tag < o.tag : seq < o.seq;
        }
    };
    void sift_up(std::size_t i);
    void sift_down(std::size_t i);

    std::vector<Node> heap_;
    std::uint64_t next_seq_ = 0;
};

}  // namespace wfqs::baselines
