#include "baselines/tcq_queue.hpp"

#include "common/assert.hpp"
#include "common/bits.hpp"

namespace wfqs::baselines {

TcqQueue::TcqQueue(unsigned range_bits) {
    WFQS_REQUIRE(range_bits >= 2 && range_bits <= 26, "TCQ range 2..26 bits");
    range_ = std::uint64_t{1} << range_bits;
    // D = H = sqrt(R), split bit-wise.
    const unsigned day_bits = range_bits / 2;
    days_ = std::size_t{1} << day_bits;
    slots_per_day_ = static_cast<std::size_t>(range_ / days_);
    day_occupancy_.assign(days_, 0);
    slots_.assign(static_cast<std::size_t>(range_), {});
}

void TcqQueue::insert(std::uint64_t tag, std::uint32_t payload) {
    WFQS_REQUIRE(tag < range_, "TCQ tag exceeds the bounded universe");
    OpScope op(*this, OpScope::Kind::Insert);
    slots_[tag].push_back(payload);
    touch();  // slot append
    ++day_occupancy_[tag / slots_per_day_];
    touch();  // day counter update
    ++size_;
}

std::optional<QueueEntry> TcqQueue::pop_min() {
    if (size_ == 0) return std::nullopt;
    OpScope op(*this, OpScope::Kind::Pop);
    // First level: find the earliest non-empty day.
    std::size_t day = 0;
    for (; day < days_; ++day) {
        touch();
        if (day_occupancy_[day] != 0) break;
    }
    WFQS_ASSERT(day < days_);
    // Second level: find the earliest non-empty slot of that day.
    const std::size_t base = day * slots_per_day_;
    for (std::size_t s = 0; s < slots_per_day_; ++s) {
        touch();
        auto& q = slots_[base + s];
        if (!q.empty()) {
            const QueueEntry e{base + s, q.front()};
            q.pop_front();
            --day_occupancy_[day];
            touch();
            --size_;
            return e;
        }
    }
    WFQS_ASSERT_MSG(false, "TCQ day occupancy out of sync");
    return std::nullopt;
}

std::optional<QueueEntry> TcqQueue::peek_min() {
    if (size_ == 0) return std::nullopt;
    for (std::size_t day = 0; day < days_; ++day) {
        if (day_occupancy_[day] == 0) continue;
        const std::size_t base = day * slots_per_day_;
        for (std::size_t s = 0; s < slots_per_day_; ++s)
            if (!slots_[base + s].empty())
                return QueueEntry{base + s, slots_[base + s].front()};
    }
    return std::nullopt;
}

}  // namespace wfqs::baselines
