// Common interface for every tag-queue structure compared in Table I.
//
// Each implementation counts its *memory accesses* the way the paper
// does for the hardware options ("the worst case number of memory
// accesses required per lookup"): touching one stored word — an array
// element, a list node, a bucket head, a CAM probe — is one access.
// The Table I bench measures worst/average accesses per operation over
// identical workloads instead of quoting the analytic columns on faith.
//
// The `model()` tag records which of the two §II-C architectures the
// structure follows: "sort" (work at insert, O(1) service) or "search"
// (cheap insert, lookup at service time).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace wfqs::hw {
class Simulation;
}

namespace wfqs::baselines {

struct QueueEntry {
    std::uint64_t tag = 0;
    std::uint32_t payload = 0;

    friend bool operator==(const QueueEntry&, const QueueEntry&) = default;
};

struct QueueStats {
    std::uint64_t inserts = 0;
    std::uint64_t pops = 0;
    std::uint64_t accesses_total = 0;
    std::uint64_t worst_insert_accesses = 0;
    std::uint64_t worst_pop_accesses = 0;

    double avg_accesses_per_op() const {
        const std::uint64_t ops = inserts + pops;
        return ops == 0 ? 0.0 : static_cast<double>(accesses_total) /
                                    static_cast<double>(ops);
    }
};

class TagQueue {
public:
    virtual ~TagQueue() = default;

    virtual void insert(std::uint64_t tag, std::uint32_t payload) = 0;
    virtual std::optional<QueueEntry> pop_min() = 0;
    virtual std::optional<QueueEntry> peek_min() = 0;

    /// Bulk insert for the batched host pipeline: semantically `n` scalar
    /// inserts in order. The default is exactly that loop; sorter-backed
    /// queues override it to pay the virtual dispatch, stats bracket, and
    /// trace span once per batch. Overrides keep per-op *cycle*
    /// accounting identical to the scalar path and keep QueueStats op
    /// counts and accesses_total exact, but may attribute accesses at
    /// batch granularity — worst_insert_accesses/worst_pop_accesses are
    /// only tightened by the scalar entry points (Table I measurements
    /// use those).
    virtual void insert_batch(const QueueEntry* entries, std::size_t n) {
        for (std::size_t i = 0; i < n; ++i) insert(entries[i].tag, entries[i].payload);
    }

    /// Bulk pop: up to `max_n` pops into `out`, stopping when empty;
    /// returns the count. Default loops pop_min; see insert_batch for
    /// override semantics.
    virtual std::size_t pop_batch(QueueEntry* out, std::size_t max_n) {
        std::size_t n = 0;
        while (n < max_n) {
            const auto e = pop_min();
            if (!e) break;
            out[n++] = *e;
        }
        return n;
    }

    virtual std::size_t size() const = 0;
    bool empty() const { return size() == 0; }

    virtual std::string name() const = 0;
    virtual std::string model() const = 0;       ///< "sort" or "search"
    virtual std::string complexity() const = 0;  ///< Table I analytic column

    /// Binning is deliberately approximate (§II-B: "inherently
    /// inaccurate"); everything else returns the exact minimum.
    virtual bool exact() const { return true; }

    /// After an operation threw fault::FaultError: restore internal
    /// consistency (scrub/repair/rebuild) so the caller may retry.
    /// Returns false when this structure has no recovery story (the
    /// software baselines — std containers don't get SEUs).
    virtual bool recover() { return false; }

    /// The cycle-level memory inventory behind this queue, when it has
    /// one (the sorter-backed queues); nullptr for software baselines.
    /// Lets harnesses attach fault injectors and ECC without knowing the
    /// concrete type.
    virtual hw::Simulation* simulation() { return nullptr; }

    /// Ask for `n` host worker threads behind the bulk entry points
    /// (per-bank parallel insert_batch on the multi-bank ffs backend;
    /// results stay bit-identical to the sequential path). Returns false
    /// when this queue has no parallel story (everything else). 0 turns
    /// workers off again.
    virtual bool set_worker_threads(unsigned n) {
        (void)n;
        return false;
    }

    const QueueStats& stats() const { return stats_; }
    void reset_stats() { stats_ = {}; }

protected:
    /// RAII op bracket: accumulates accesses into the right counters.
    class OpScope {
    public:
        enum class Kind { Insert, Pop };
        OpScope(TagQueue& q, Kind kind);
        ~OpScope();
        OpScope(const OpScope&) = delete;
        OpScope& operator=(const OpScope&) = delete;

    private:
        TagQueue& q_;
        Kind kind_;
        std::uint64_t start_;
    };

    /// Record `n` memory accesses for the current operation.
    void touch(std::uint64_t n = 1) { stats_.accesses_total += n; }

    /// Batch-granularity stats bracket for insert_batch/pop_batch
    /// overrides: `ops` operations spent `accesses` accesses in total.
    /// Op counts and accesses_total stay exact; the per-op worst-case
    /// trackers are deliberately left alone (they are defined per scalar
    /// op — see insert_batch).
    void record_batch(OpScope::Kind kind, std::uint64_t ops, std::uint64_t accesses) {
        stats_.accesses_total += accesses;
        if (kind == OpScope::Kind::Insert)
            stats_.inserts += ops;
        else
            stats_.pops += ops;
    }

private:
    QueueStats stats_;
};

inline TagQueue::OpScope::OpScope(TagQueue& q, Kind kind)
    : q_(q), kind_(kind), start_(q.stats_.accesses_total) {}

inline TagQueue::OpScope::~OpScope() {
    const std::uint64_t used = q_.stats_.accesses_total - start_;
    if (kind_ == Kind::Insert) {
        ++q_.stats_.inserts;
        if (used > q_.stats_.worst_insert_accesses)
            q_.stats_.worst_insert_accesses = used;
    } else {
        ++q_.stats_.pops;
        if (used > q_.stats_.worst_pop_accesses)
            q_.stats_.worst_pop_accesses = used;
    }
}

}  // namespace wfqs::baselines
