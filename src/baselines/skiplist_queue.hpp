// Skip list — the expected-O(log N) pointer-based software structure,
// included as the stronger software sort-model baseline next to the heap.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "baselines/tag_queue.hpp"
#include "common/rng.hpp"

namespace wfqs::baselines {

class SkiplistQueue final : public TagQueue {
public:
    explicit SkiplistQueue(std::uint64_t seed = 0x5eed);
    ~SkiplistQueue() override;

    void insert(std::uint64_t tag, std::uint32_t payload) override;
    std::optional<QueueEntry> pop_min() override;
    std::optional<QueueEntry> peek_min() override;

    std::size_t size() const override { return size_; }
    std::string name() const override { return "skip list"; }
    std::string model() const override { return "sort"; }
    std::string complexity() const override { return "O(log N) expected"; }

private:
    static constexpr int kMaxLevel = 24;
    struct Node {
        QueueEntry entry;
        std::vector<Node*> next;
    };
    int random_level();

    Node head_;
    int level_ = 1;
    std::size_t size_ = 0;
    Rng rng_;
};

}  // namespace wfqs::baselines
