#include "baselines/veb_queue.hpp"

#include "common/assert.hpp"

namespace wfqs::baselines {

struct VebQueue::Node {
    unsigned bits;           ///< universe is 2^bits
    bool occupied = false;
    std::uint64_t min = 0;   ///< not stored recursively (CLRS convention)
    std::uint64_t max = 0;
    std::unique_ptr<Node> summary;
    std::vector<std::unique_ptr<Node>> clusters;

    explicit Node(unsigned b) : bits(b) {}

    unsigned high_bits() const { return bits - bits / 2; }
    unsigned low_bits() const { return bits / 2; }
    std::uint64_t high(std::uint64_t x) const { return x >> low_bits(); }
    std::uint64_t low(std::uint64_t x) const {
        return x & ((std::uint64_t{1} << low_bits()) - 1);
    }
    std::uint64_t index(std::uint64_t h, std::uint64_t l) const {
        return (h << low_bits()) | l;
    }
    Node& cluster(std::uint64_t h) {
        if (clusters.empty())
            clusters.resize(std::size_t{1} << high_bits());
        if (!clusters[h]) clusters[h] = std::make_unique<Node>(low_bits());
        return *clusters[h];
    }
    Node& get_summary() {
        if (!summary) summary = std::make_unique<Node>(high_bits());
        return *summary;
    }
};

VebQueue::VebQueue(unsigned range_bits) {
    WFQS_REQUIRE(range_bits >= 1 && range_bits <= 24, "vEB range 1..24 bits");
    range_ = std::uint64_t{1} << range_bits;
    by_value_.assign(static_cast<std::size_t>(range_), {});
    root_ = new Node(range_bits);
}

VebQueue::~VebQueue() { delete root_; }

void VebQueue::veb_insert(Node& node, std::uint64_t x) {
    touch();  // one structure-node visit
    if (!node.occupied) {
        node.occupied = true;
        node.min = node.max = x;
        return;
    }
    if (x < node.min) std::swap(x, node.min);
    if (node.bits > 1) {
        const std::uint64_t h = node.high(x);
        const std::uint64_t l = node.low(x);
        Node& c = node.cluster(h);
        if (!c.occupied) veb_insert(node.get_summary(), h);
        veb_insert(c, l);
    }
    if (x > node.max) node.max = x;
}

void VebQueue::veb_erase(Node& node, std::uint64_t x) {
    touch();
    if (node.min == node.max) {
        WFQS_ASSERT(x == node.min);
        node.occupied = false;
        return;
    }
    if (node.bits == 1) {
        node.min = node.max = (x == 0) ? 1 : 0;
        return;
    }
    if (x == node.min) {
        // Pull the successor up into min.
        const std::uint64_t first = node.get_summary().min;
        x = node.index(first, node.cluster(first).min);
        node.min = x;
    }
    const std::uint64_t h = node.high(x);
    Node& c = node.cluster(h);
    veb_erase(c, node.low(x));
    if (!c.occupied) veb_erase(node.get_summary(), h);
    if (x == node.max) {
        if (!node.summary || !node.summary->occupied) {
            node.max = node.min;
        } else {
            const std::uint64_t last = node.summary->max;
            node.max = node.index(last, node.cluster(last).max);
        }
    }
}

void VebQueue::insert(std::uint64_t tag, std::uint32_t payload) {
    WFQS_REQUIRE(tag < range_, "vEB tag exceeds the bounded universe");
    OpScope op(*this, OpScope::Kind::Insert);
    if (by_value_[tag].empty()) veb_insert(*root_, tag);
    by_value_[tag].push_back(payload);
    touch();  // FIFO append
    ++size_;
}

std::optional<QueueEntry> VebQueue::pop_min() {
    if (size_ == 0) return std::nullopt;
    OpScope op(*this, OpScope::Kind::Pop);
    WFQS_ASSERT(root_->occupied);
    const std::uint64_t v = root_->min;
    touch();  // read the root min
    const QueueEntry e{v, by_value_[v].front()};
    by_value_[v].pop_front();
    touch();
    if (by_value_[v].empty()) veb_erase(*root_, v);
    --size_;
    return e;
}

std::optional<QueueEntry> VebQueue::peek_min() {
    if (size_ == 0) return std::nullopt;
    const std::uint64_t v = root_->min;
    return QueueEntry{v, by_value_[v].front()};
}

}  // namespace wfqs::baselines
