#include "baselines/sorted_list_queue.hpp"

namespace wfqs::baselines {

void SortedListQueue::insert(std::uint64_t tag, std::uint32_t payload) {
    OpScope op(*this, OpScope::Kind::Insert);
    // Walk from the head until the first strictly larger tag (FIFO within
    // equal tags); every node visited is one access.
    auto it = list_.begin();
    while (it != list_.end()) {
        touch();
        if (it->tag > tag) break;
        ++it;
    }
    list_.insert(it, QueueEntry{tag, payload});
    touch();  // write the new node
}

std::optional<QueueEntry> SortedListQueue::pop_min() {
    if (list_.empty()) return std::nullopt;
    OpScope op(*this, OpScope::Kind::Pop);
    touch();
    const QueueEntry e = list_.front();
    list_.pop_front();
    return e;
}

std::optional<QueueEntry> SortedListQueue::peek_min() {
    if (list_.empty()) return std::nullopt;
    return list_.front();
}

}  // namespace wfqs::baselines
