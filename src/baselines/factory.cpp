#include "baselines/factory.hpp"

#include "baselines/binning_queue.hpp"
#include "baselines/calendar_queue.hpp"
#include "baselines/cam_queue.hpp"
#include "baselines/heap_queue.hpp"
#include "baselines/skiplist_queue.hpp"
#include "baselines/sorted_list_queue.hpp"
#include "baselines/tcq_queue.hpp"
#include "baselines/veb_queue.hpp"
#include "common/assert.hpp"
#include "common/bits.hpp"
#include <bit>
#include <algorithm>
#include "core/sharded_sorter.hpp"

namespace wfqs::baselines {
namespace {

/// The paper's sorter behind the TagQueue interface. Memory accesses are
/// the circuit's real SRAM traffic (tree levels in SRAM, translation
/// table, tag store); register reads are free, as in the silicon.
/// Held as a ShardedSorter so QueueParams::num_banks can scale it out;
/// at one bank (the default) that wrapper is a pass-through and the
/// queue is bit- and cycle-identical to a bare TagSorter.
class SorterTagQueue final : public TagQueue {
public:
    static unsigned payload_bits_for(const tree::TreeGeometry& g, std::size_t capacity) {
        const unsigned next_bits = static_cast<unsigned>(
            64 - std::countl_zero(static_cast<std::uint64_t>(capacity)));
        const unsigned avail = 64 - g.tag_bits() - next_bits;
        WFQS_REQUIRE(avail >= 16, "tree too wide to pack payload into list entries");
        return std::min(avail, 32u);
    }

    /// Per-bank slot budget: split rounding up, so the aggregate never
    /// shrinks below the requested total.
    static std::size_t per_bank_capacity(std::size_t capacity, unsigned num_banks) {
        const std::size_t n = std::max(num_banks, 1u);
        return std::max<std::size_t>((capacity + n - 1) / n, 1);
    }

    SorterTagQueue(tree::TreeGeometry geometry, std::size_t capacity,
                   unsigned num_banks, std::string name, std::string complexity)
        : sorter_(
              {{geometry, per_bank_capacity(capacity, num_banks),
                payload_bits_for(geometry, per_bank_capacity(capacity, num_banks))},
               num_banks},
              sim_),
          name_(num_banks > 1 ? name + " x" + std::to_string(num_banks)
                              : std::move(name)),
          complexity_(std::move(complexity)) {}

    void insert(std::uint64_t tag, std::uint32_t payload) override {
        OpScope op(*this, OpScope::Kind::Insert);
        const std::uint64_t before = sim_.total_memory_stats().total();
        sorter_.insert(tag, payload);
        touch(sim_.total_memory_stats().total() - before);
    }

    std::optional<QueueEntry> pop_min() override {
        if (sorter_.empty()) return std::nullopt;
        OpScope op(*this, OpScope::Kind::Pop);
        const std::uint64_t before = sim_.total_memory_stats().total();
        const auto popped = sorter_.pop_min();
        touch(sim_.total_memory_stats().total() - before);
        return QueueEntry{popped->tag, popped->payload};
    }

    /// Batched entry points: one stats bracket and one sorter dispatch
    /// per batch (the inventory-wide SramStats sweep behind touch() is
    /// the dominant host cost of a scalar op). Cycle accounting in the
    /// sorter is per-op and identical to the scalar path.
    static constexpr std::size_t kBatchChunk = 64;

    void insert_batch(const QueueEntry* entries, std::size_t n) override {
        const std::uint64_t before = sim_.total_memory_stats().total();
        core::SortedTag buf[kBatchChunk];
        std::size_t done = 0;
        while (done < n) {
            const std::size_t chunk = std::min(n - done, kBatchChunk);
            for (std::size_t i = 0; i < chunk; ++i)
                buf[i] = core::SortedTag{entries[done + i].tag, entries[done + i].payload};
            sorter_.insert_batch(buf, chunk);
            done += chunk;
        }
        record_batch(OpScope::Kind::Insert, n,
                     sim_.total_memory_stats().total() - before);
    }

    std::size_t pop_batch(QueueEntry* out, std::size_t max_n) override {
        const std::uint64_t before = sim_.total_memory_stats().total();
        core::SortedTag buf[kBatchChunk];
        std::size_t total = 0;
        while (total < max_n) {
            const std::size_t got =
                sorter_.pop_batch(buf, std::min(max_n - total, kBatchChunk));
            if (got == 0) break;
            for (std::size_t i = 0; i < got; ++i)
                out[total + i] = QueueEntry{buf[i].tag, buf[i].payload};
            total += got;
        }
        record_batch(OpScope::Kind::Pop, total,
                     sim_.total_memory_stats().total() - before);
        return total;
    }

    std::optional<QueueEntry> peek_min() override {
        const auto min = sorter_.peek_min();
        if (!min) return std::nullopt;
        return QueueEntry{min->tag, min->payload};
    }

    std::size_t size() const override { return sorter_.size(); }
    std::string name() const override { return name_; }
    std::string model() const override { return "sort"; }
    std::string complexity() const override { return complexity_; }

    bool recover() override { return sorter_.recover(); }

    hw::Simulation* simulation() override { return &sim_; }

    const core::ShardedSorter& sorter() const { return sorter_; }

private:
    hw::Simulation sim_;
    core::ShardedSorter sorter_;
    std::string name_;
    std::string complexity_;
};

tree::TreeGeometry multibit_geometry(unsigned range_bits) {
    // 4-bit literals as in the silicon; enough levels to cover the range.
    const unsigned levels = static_cast<unsigned>(ceil_div(range_bits, 4));
    return tree::TreeGeometry{levels, 4};
}

}  // namespace

std::unique_ptr<TagQueue> make_tag_queue(QueueKind kind, const QueueParams& params) {
    switch (kind) {
        case QueueKind::MultibitTree:
            return std::make_unique<SorterTagQueue>(multibit_geometry(params.range_bits),
                                                    params.capacity, params.num_banks,
                                                    "multi-bit tree", "O(W/k)");
        case QueueKind::BinaryTree:
            return std::make_unique<SorterTagQueue>(
                tree::TreeGeometry::binary(params.range_bits), params.capacity,
                params.num_banks, "binary tree", "O(W)");
        case QueueKind::Heap:
            return std::make_unique<HeapTagQueue>();
        case QueueKind::SortedList:
            return std::make_unique<SortedListQueue>();
        case QueueKind::Skiplist:
            return std::make_unique<SkiplistQueue>();
        case QueueKind::Calendar:
            return std::make_unique<CalendarQueue>();
        case QueueKind::Tcq:
            return std::make_unique<TcqQueue>(params.range_bits);
        case QueueKind::Binning:
            return std::make_unique<BinningQueue>(params.range_bits, 64);
        case QueueKind::BinaryCam:
            return std::make_unique<BinaryCamQueue>(params.range_bits);
        case QueueKind::Tcam:
            return std::make_unique<TcamQueue>(params.range_bits);
        case QueueKind::Veb:
            return std::make_unique<VebQueue>(params.range_bits);
    }
    WFQS_ASSERT_MSG(false, "unknown queue kind");
    return nullptr;
}

const std::vector<QueueKind>& all_queue_kinds() {
    static const std::vector<QueueKind> kinds = {
        QueueKind::MultibitTree, QueueKind::BinaryTree, QueueKind::Heap,
        QueueKind::SortedList,   QueueKind::Skiplist,   QueueKind::Calendar,
        QueueKind::Tcq,          QueueKind::Binning,    QueueKind::BinaryCam,
        QueueKind::Tcam,         QueueKind::Veb,
    };
    return kinds;
}

std::string queue_kind_name(QueueKind kind) {
    return make_tag_queue(kind, {12, 64})->name();
}

}  // namespace wfqs::baselines
