#include "baselines/factory.hpp"

#include "baselines/binning_queue.hpp"
#include "baselines/calendar_queue.hpp"
#include "baselines/cam_queue.hpp"
#include "baselines/heap_queue.hpp"
#include "baselines/skiplist_queue.hpp"
#include "baselines/sorted_list_queue.hpp"
#include "baselines/tcq_queue.hpp"
#include "baselines/veb_queue.hpp"
#include "common/assert.hpp"
#include "common/bits.hpp"
#include <bit>
#include <algorithm>
#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include "core/ffs_sorter.hpp"
#include "core/sharded_sorter.hpp"

namespace wfqs::baselines {
namespace {

/// The paper's sorter behind the TagQueue interface. Memory accesses are
/// the circuit's real SRAM traffic (tree levels in SRAM, translation
/// table, tag store); register reads are free, as in the silicon.
/// Held as a ShardedSorter so QueueParams::num_banks can scale it out;
/// at one bank (the default) that wrapper is a pass-through and the
/// queue is bit- and cycle-identical to a bare TagSorter.
class SorterTagQueue final : public TagQueue {
public:
    static unsigned payload_bits_for(const tree::TreeGeometry& g, std::size_t capacity) {
        const unsigned next_bits = static_cast<unsigned>(
            64 - std::countl_zero(static_cast<std::uint64_t>(capacity)));
        const unsigned avail = 64 - g.tag_bits() - next_bits;
        WFQS_REQUIRE(avail >= 16, "tree too wide to pack payload into list entries");
        return std::min(avail, 32u);
    }

    /// Per-bank slot budget: split rounding up, so the aggregate never
    /// shrinks below the requested total.
    static std::size_t per_bank_capacity(std::size_t capacity, unsigned num_banks) {
        const std::size_t n = std::max(num_banks, 1u);
        return std::max<std::size_t>((capacity + n - 1) / n, 1);
    }

    SorterTagQueue(tree::TreeGeometry geometry, std::size_t capacity,
                   unsigned num_banks, std::string name, std::string complexity)
        : sorter_(
              {{geometry, per_bank_capacity(capacity, num_banks),
                payload_bits_for(geometry, per_bank_capacity(capacity, num_banks))},
               num_banks},
              sim_),
          name_(num_banks > 1 ? name + " x" + std::to_string(num_banks)
                              : std::move(name)),
          complexity_(std::move(complexity)) {}

    void insert(std::uint64_t tag, std::uint32_t payload) override {
        OpScope op(*this, OpScope::Kind::Insert);
        const std::uint64_t before = sim_.total_memory_stats().total();
        sorter_.insert(tag, payload);
        touch(sim_.total_memory_stats().total() - before);
    }

    std::optional<QueueEntry> pop_min() override {
        if (sorter_.empty()) return std::nullopt;
        OpScope op(*this, OpScope::Kind::Pop);
        const std::uint64_t before = sim_.total_memory_stats().total();
        const auto popped = sorter_.pop_min();
        touch(sim_.total_memory_stats().total() - before);
        return QueueEntry{popped->tag, popped->payload};
    }

    /// Batched entry points: one stats bracket and one sorter dispatch
    /// per batch (the inventory-wide SramStats sweep behind touch() is
    /// the dominant host cost of a scalar op). Cycle accounting in the
    /// sorter is per-op and identical to the scalar path.
    static constexpr std::size_t kBatchChunk = 64;

    void insert_batch(const QueueEntry* entries, std::size_t n) override {
        const std::uint64_t before = sim_.total_memory_stats().total();
        core::SortedTag buf[kBatchChunk];
        std::size_t done = 0;
        while (done < n) {
            const std::size_t chunk = std::min(n - done, kBatchChunk);
            for (std::size_t i = 0; i < chunk; ++i)
                buf[i] = core::SortedTag{entries[done + i].tag, entries[done + i].payload};
            sorter_.insert_batch(buf, chunk);
            done += chunk;
        }
        record_batch(OpScope::Kind::Insert, n,
                     sim_.total_memory_stats().total() - before);
    }

    std::size_t pop_batch(QueueEntry* out, std::size_t max_n) override {
        const std::uint64_t before = sim_.total_memory_stats().total();
        core::SortedTag buf[kBatchChunk];
        std::size_t total = 0;
        while (total < max_n) {
            const std::size_t got =
                sorter_.pop_batch(buf, std::min(max_n - total, kBatchChunk));
            if (got == 0) break;
            for (std::size_t i = 0; i < got; ++i)
                out[total + i] = QueueEntry{buf[i].tag, buf[i].payload};
            total += got;
        }
        record_batch(OpScope::Kind::Pop, total,
                     sim_.total_memory_stats().total() - before);
        return total;
    }

    std::optional<QueueEntry> peek_min() override {
        const auto min = sorter_.peek_min();
        if (!min) return std::nullopt;
        return QueueEntry{min->tag, min->payload};
    }

    std::size_t size() const override { return sorter_.size(); }
    std::string name() const override { return name_; }
    std::string model() const override { return "sort"; }
    std::string complexity() const override { return complexity_; }

    bool recover() override { return sorter_.recover(); }

    hw::Simulation* simulation() override { return &sim_; }

    const core::ShardedSorter& sorter() const { return sorter_; }

private:
    hw::Simulation sim_;
    core::ShardedSorter sorter_;
    std::string name_;
    std::string complexity_;
};

tree::TreeGeometry multibit_geometry(unsigned range_bits) {
    // 4-bit literals as in the silicon; enough levels to cover the range.
    const unsigned levels = static_cast<unsigned>(ceil_div(range_bits, 4));
    return tree::TreeGeometry{levels, 4};
}

/// Persistent worker pool for per-bank parallel batch inserts. Workers
/// sleep on a condition variable between batches; run() hands out one
/// task per bank (worker w takes banks w, w+N, ...) and blocks until all
/// complete. Task exceptions are captured and rethrown in the caller.
class BankPool {
public:
    explicit BankPool(unsigned workers) {
        threads_.reserve(workers);
        for (unsigned w = 0; w < workers; ++w)
            threads_.emplace_back([this, w] { loop(w); });
    }
    ~BankPool() {
        {
            const std::lock_guard<std::mutex> g(m_);
            stop_ = true;
        }
        cv_.notify_all();
        for (auto& t : threads_) t.join();
    }

    unsigned workers() const { return static_cast<unsigned>(threads_.size()); }

    void run(const std::vector<std::function<void()>>& tasks) {
        std::unique_lock<std::mutex> g(m_);
        tasks_ = &tasks;
        pending_ = workers();
        first_error_ = nullptr;
        ++epoch_;
        cv_.notify_all();
        done_cv_.wait(g, [this] { return pending_ == 0; });
        tasks_ = nullptr;
        if (first_error_) std::rethrow_exception(first_error_);
    }

private:
    void loop(unsigned wid) {
        std::uint64_t seen = 0;
        for (;;) {
            const std::vector<std::function<void()>>* tasks = nullptr;
            {
                std::unique_lock<std::mutex> g(m_);
                cv_.wait(g, [&] { return stop_ || epoch_ != seen; });
                if (stop_) return;
                seen = epoch_;
                tasks = tasks_;
            }
            std::exception_ptr err;
            for (std::size_t i = wid; i < tasks->size(); i += threads_.size()) {
                try {
                    (*tasks)[i]();
                } catch (...) {
                    if (!err) err = std::current_exception();
                }
            }
            {
                const std::lock_guard<std::mutex> g(m_);
                if (err && !first_error_) first_error_ = err;
                --pending_;
            }
            done_cv_.notify_one();
        }
    }

    std::mutex m_;
    std::condition_variable cv_;
    std::condition_variable done_cv_;
    std::vector<std::thread> threads_;
    const std::vector<std::function<void()>>* tasks_ = nullptr;
    std::uint64_t epoch_ = 0;
    unsigned pending_ = 0;
    bool stop_ = false;
    std::exception_ptr first_error_;
};

/// The host-native backend behind the TagQueue interface: N FfsSorter
/// banks under the ShardedSorter's tag-interleave encoding (bank =
/// tag mod N, bank-local tag = tag div N, so the aggregate window is N
/// bank spans and cross-bank global tags never tie). There is no cycle
/// model behind it — simulation() is null and every op counts one
/// access — the point is wall-clock ops/s behind the same contract.
class FfsTagQueue final : public TagQueue {
public:
    FfsTagQueue(tree::TreeGeometry geometry, std::size_t capacity,
                unsigned num_banks, std::string name, std::string complexity)
        : name_(num_banks > 1 ? name + " x" + std::to_string(num_banks)
                              : std::move(name)),
          complexity_(std::move(complexity)) {
        const unsigned n = std::max(num_banks, 1u);
        WFQS_REQUIRE(std::has_single_bit(n),
                     "bank count must be a power of two");
        shift_ = log2_exact(n);
        bank_mask_ = n - 1;
        core::FfsSorter::Config cfg;
        cfg.geometry = geometry;
        cfg.capacity = SorterTagQueue::per_bank_capacity(capacity, n);
        cfg.payload_bits = 32;  // TagQueue payloads are raw 32-bit words
        banks_.reserve(n);
        for (unsigned b = 0; b < n; ++b) banks_.emplace_back(cfg);
    }

    void insert(std::uint64_t tag, std::uint32_t payload) override {
        OpScope op(*this, OpScope::Kind::Insert);
        banks_[bank_of(tag)].insert(local_of(tag), payload);
        touch(1);
    }

    std::optional<QueueEntry> pop_min() override {
        const int b = min_bank();
        if (b < 0) return std::nullopt;
        OpScope op(*this, OpScope::Kind::Pop);
        const auto popped = banks_[static_cast<unsigned>(b)].pop_min();
        touch(1);
        return QueueEntry{global_of(popped->tag, static_cast<unsigned>(b)),
                          popped->payload};
    }

    std::optional<QueueEntry> peek_min() override {
        const int b = min_bank();
        if (b < 0) return std::nullopt;
        const auto head = banks_[static_cast<unsigned>(b)].peek_min();
        return QueueEntry{global_of(head->tag, static_cast<unsigned>(b)),
                          head->payload};
    }

    void insert_batch(const QueueEntry* entries, std::size_t n) override {
        if (banks_.size() == 1) {
            // Single bank: global and local tag spaces coincide, so the
            // whole batch goes to the sorter's batch entry point in chunks
            // (one dispatch per chunk instead of one per entry). A throw
            // leaves the sorter's applied prefix in place; the exact
            // applied count is recovered from the occupancy delta.
            const std::size_t before = banks_[0].size();
            core::SortedTag buf[kBatchChunk];
            std::size_t done = 0;
            try {
                while (done < n) {
                    const std::size_t chunk = std::min(n - done, kBatchChunk);
                    for (std::size_t i = 0; i < chunk; ++i)
                        buf[i] = core::SortedTag{entries[done + i].tag,
                                                 entries[done + i].payload};
                    banks_[0].insert_batch(buf, chunk);
                    done += chunk;
                }
            } catch (...) {
                const std::size_t applied = banks_[0].size() - before;
                record_batch(OpScope::Kind::Insert, applied, applied);
                throw;
            }
            record_batch(OpScope::Kind::Insert, n, n);
            return;
        }
        if (pool_ && n >= kParallelBatchMin && batch_fully_accepted(entries, n)) {
            parallel_insert(entries, n);
            record_batch(OpScope::Kind::Insert, n, n);
            return;
        }
        // Scalar-loop semantics (a throw leaves entries [0, i) applied).
        std::size_t done = 0;
        try {
            for (; done < n; ++done)
                banks_[bank_of(entries[done].tag)].insert(
                    local_of(entries[done].tag), entries[done].payload);
        } catch (...) {
            record_batch(OpScope::Kind::Insert, done, done);
            throw;
        }
        record_batch(OpScope::Kind::Insert, n, n);
    }

    std::size_t pop_batch(QueueEntry* out, std::size_t max_n) override {
        if (banks_.size() == 1) {
            // Single bank: pops come straight off the sorter in chunks —
            // no per-pop min-bank sweep, no per-entry dispatch.
            core::SortedTag buf[kBatchChunk];
            std::size_t total = 0;
            while (total < max_n) {
                const std::size_t got = banks_[0].pop_batch(
                    buf, std::min(max_n - total, kBatchChunk));
                if (got == 0) break;
                for (std::size_t i = 0; i < got; ++i)
                    out[total + i] = QueueEntry{buf[i].tag, buf[i].payload};
                total += got;
            }
            record_batch(OpScope::Kind::Pop, total, total);
            return total;
        }
        std::size_t total = 0;
        while (total < max_n) {
            const auto e = pop_min_unscoped();
            if (!e) break;
            out[total++] = *e;
        }
        record_batch(OpScope::Kind::Pop, total, total);
        return total;
    }

    std::size_t size() const override {
        std::size_t n = 0;
        for (const auto& b : banks_) n += b.size();
        return n;
    }
    std::string name() const override { return name_; }
    std::string model() const override { return "sort"; }
    std::string complexity() const override { return complexity_; }

    bool recover() override {
        for (auto& bank : banks_) {
            const auto report = bank.audit();
            if (report.clean()) continue;
            if (!bank.repair(report)) bank.rebuild();
        }
        return true;
    }

    bool set_worker_threads(unsigned n) override {
        if (n == 0) {
            pool_.reset();
            return true;
        }
        if (banks_.size() < 2) return false;  // nothing to parallelize over
        if (!pool_ || pool_->workers() != n) pool_ = std::make_unique<BankPool>(n);
        return true;
    }

    const core::FfsSorter& bank(unsigned b) const { return banks_[b]; }
    unsigned num_banks() const { return static_cast<unsigned>(banks_.size()); }

private:
    static constexpr std::size_t kParallelBatchMin = 64;
    static constexpr std::size_t kBatchChunk = 64;

    unsigned bank_of(std::uint64_t tag) const {
        return static_cast<unsigned>(tag & bank_mask_);
    }
    std::uint64_t local_of(std::uint64_t tag) const { return tag >> shift_; }
    std::uint64_t global_of(std::uint64_t local, unsigned bank) const {
        return (local << shift_) | bank;
    }

    /// Comparator sweep over per-bank heads in *global* tag units. Under
    /// interleave, globals from different banks never tie (they differ in
    /// the low bank bits), so strict less-than suffices.
    int min_bank() const {
        int best = -1;
        std::uint64_t best_tag = 0;
        for (unsigned b = 0; b < banks_.size(); ++b) {
            if (banks_[b].empty()) continue;
            const std::uint64_t t = global_of(banks_[b].head_logical(), b);
            if (best < 0 || t < best_tag) {
                best_tag = t;
                best = static_cast<int>(b);
            }
        }
        return best;
    }

    std::optional<QueueEntry> pop_min_unscoped() {
        const int b = min_bank();
        if (b < 0) return std::nullopt;
        const auto popped = banks_[static_cast<unsigned>(b)].pop_min();
        return QueueEntry{global_of(popped->tag, static_cast<unsigned>(b)),
                          popped->payload};
    }

    /// Dry-run every accept decision against shadow bank registers. The
    /// accept predicate depends only on (size, head, max), and an insert's
    /// effect on those is pure arithmetic, so this predicts the scalar
    /// loop's outcome exactly. Only a fully-accepted batch is dispatched
    /// to the workers — exceptions never have to cross threads and the
    /// "[0, i) applied" contract stays trivially true.
    bool batch_fully_accepted(const QueueEntry* entries, std::size_t n) const {
        struct Shadow {
            std::size_t size;
            std::uint64_t head, max;
        };
        std::vector<Shadow> shadow(banks_.size());
        for (unsigned b = 0; b < banks_.size(); ++b)
            shadow[b] = {banks_[b].size(), banks_[b].head_logical(),
                         banks_[b].max_logical()};
        const std::size_t cap = banks_[0].capacity();
        const std::uint64_t span = banks_[0].window_span();
        const bool strict = banks_[0].config().strict_min_discipline;
        for (std::size_t i = 0; i < n; ++i) {
            const unsigned b = bank_of(entries[i].tag);
            const std::uint64_t local = local_of(entries[i].tag);
            Shadow& s = shadow[b];
            if (s.size >= cap) return false;
            if (s.size != 0) {
                if (strict && local < s.head) return false;
                const std::uint64_t lo = std::min(local, s.head);
                const std::uint64_t hi = std::max(local, s.max);
                if (hi - lo >= span) return false;
                s.head = std::min(s.head, local);
                s.max = std::max(s.max, local);
            } else {
                s.head = s.max = local;
            }
            ++s.size;
        }
        return true;
    }

    void parallel_insert(const QueueEntry* entries, std::size_t n) {
        // Partition in stream order: per-bank order is what determines the
        // final state (banks are independent), so the result is
        // bit-identical to the sequential loop.
        std::vector<std::vector<core::SortedTag>> split(banks_.size());
        for (auto& v : split) v.reserve(n / banks_.size() + 1);
        for (std::size_t i = 0; i < n; ++i)
            split[bank_of(entries[i].tag)].push_back(
                {local_of(entries[i].tag), entries[i].payload});
        std::vector<std::function<void()>> tasks;
        tasks.reserve(banks_.size());
        for (unsigned b = 0; b < banks_.size(); ++b) {
            if (split[b].empty()) continue;
            tasks.push_back([this, b, &split] {
                banks_[b].insert_batch(split[b].data(), split[b].size());
            });
        }
        pool_->run(tasks);
    }

    std::vector<core::FfsSorter> banks_;
    unsigned shift_ = 0;
    std::uint64_t bank_mask_ = 0;
    std::unique_ptr<BankPool> pool_;
    std::string name_;
    std::string complexity_;
};

}  // namespace

std::string backend_name(SorterBackend backend) {
    return backend == SorterBackend::kFfs ? "ffs" : "model";
}

std::optional<SorterBackend> backend_from_name(std::string_view name) {
    if (name == "model") return SorterBackend::kModel;
    if (name == "ffs") return SorterBackend::kFfs;
    return std::nullopt;
}

const std::vector<SorterBackend>& all_sorter_backends() {
    static const std::vector<SorterBackend> kBackends = {SorterBackend::kModel,
                                                         SorterBackend::kFfs};
    return kBackends;
}

std::unique_ptr<TagQueue> make_tag_queue(QueueKind kind, const QueueParams& params) {
    switch (kind) {
        case QueueKind::MultibitTree:
            if (params.backend == SorterBackend::kFfs)
                return std::make_unique<FfsTagQueue>(
                    multibit_geometry(params.range_bits), params.capacity,
                    params.num_banks, "multi-bit tree [ffs]", "O(W/k)");
            return std::make_unique<SorterTagQueue>(multibit_geometry(params.range_bits),
                                                    params.capacity, params.num_banks,
                                                    "multi-bit tree", "O(W/k)");
        case QueueKind::BinaryTree:
            if (params.backend == SorterBackend::kFfs)
                return std::make_unique<FfsTagQueue>(
                    tree::TreeGeometry::binary(params.range_bits), params.capacity,
                    params.num_banks, "binary tree [ffs]", "O(W)");
            return std::make_unique<SorterTagQueue>(
                tree::TreeGeometry::binary(params.range_bits), params.capacity,
                params.num_banks, "binary tree", "O(W)");
        case QueueKind::Heap:
            return std::make_unique<HeapTagQueue>();
        case QueueKind::SortedList:
            return std::make_unique<SortedListQueue>();
        case QueueKind::Skiplist:
            return std::make_unique<SkiplistQueue>();
        case QueueKind::Calendar:
            return std::make_unique<CalendarQueue>();
        case QueueKind::Tcq:
            return std::make_unique<TcqQueue>(params.range_bits);
        case QueueKind::Binning:
            return std::make_unique<BinningQueue>(params.range_bits, 64);
        case QueueKind::BinaryCam:
            return std::make_unique<BinaryCamQueue>(params.range_bits);
        case QueueKind::Tcam:
            return std::make_unique<TcamQueue>(params.range_bits);
        case QueueKind::Veb:
            return std::make_unique<VebQueue>(params.range_bits);
    }
    WFQS_ASSERT_MSG(false, "unknown queue kind");
    return nullptr;
}

const std::vector<QueueKind>& all_queue_kinds() {
    static const std::vector<QueueKind> kinds = {
        QueueKind::MultibitTree, QueueKind::BinaryTree, QueueKind::Heap,
        QueueKind::SortedList,   QueueKind::Skiplist,   QueueKind::Calendar,
        QueueKind::Tcq,          QueueKind::Binning,    QueueKind::BinaryCam,
        QueueKind::Tcam,         QueueKind::Veb,
    };
    return kinds;
}

std::string queue_kind_name(QueueKind kind) {
    return make_tag_queue(kind, {12, 64})->name();
}

}  // namespace wfqs::baselines
