#include "baselines/binning_queue.hpp"

#include "common/assert.hpp"

namespace wfqs::baselines {

BinningQueue::BinningQueue(unsigned range_bits, std::size_t bins) {
    WFQS_REQUIRE(range_bits >= 1 && range_bits <= 32, "binning range 1..32 bits");
    WFQS_REQUIRE(bins >= 1, "need at least one bin");
    range_ = std::uint64_t{1} << range_bits;
    WFQS_REQUIRE(bins <= range_, "more bins than tag values");
    bin_width_ = range_ / bins;
    bins_.assign(bins, {});
}

void BinningQueue::insert(std::uint64_t tag, std::uint32_t payload) {
    WFQS_REQUIRE(tag < range_, "binning tag exceeds the bounded universe");
    OpScope op(*this, OpScope::Kind::Insert);
    bins_[static_cast<std::size_t>(tag / bin_width_)].push_back(QueueEntry{tag, payload});
    touch();
    ++size_;
}

std::optional<QueueEntry> BinningQueue::pop_min() {
    if (size_ == 0) return std::nullopt;
    OpScope op(*this, OpScope::Kind::Pop);
    for (auto& bin : bins_) {
        touch();
        if (!bin.empty()) {
            const QueueEntry e = bin.front();  // FIFO head, not the bin min!
            bin.pop_front();
            --size_;
            return e;
        }
    }
    WFQS_ASSERT_MSG(false, "binning size out of sync");
    return std::nullopt;
}

std::optional<QueueEntry> BinningQueue::peek_min() {
    for (const auto& bin : bins_)
        if (!bin.empty()) return bin.front();
    return std::nullopt;
}

}  // namespace wfqs::baselines
