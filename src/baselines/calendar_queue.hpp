// Calendar queue (Brown 1988) — the classic O(1)-average event queue the
// paper cites as having been tried for hardware fair queueing [14], [15]
// and found "limited in size and scalability": its worst case degrades to
// O(N) when priorities cluster, and resizing requires a full rebuild.
#pragma once

#include <cstdint>
#include <list>
#include <vector>

#include "baselines/tag_queue.hpp"

namespace wfqs::baselines {

class CalendarQueue final : public TagQueue {
public:
    explicit CalendarQueue(std::size_t initial_buckets = 8,
                           std::uint64_t initial_width = 16);

    void insert(std::uint64_t tag, std::uint32_t payload) override;
    std::optional<QueueEntry> pop_min() override;
    std::optional<QueueEntry> peek_min() override;

    std::size_t size() const override { return size_; }
    std::string name() const override { return "calendar queue"; }
    std::string model() const override { return "sort"; }
    std::string complexity() const override { return "O(1) avg / O(N) worst"; }

    std::size_t bucket_count() const { return buckets_.size(); }
    std::uint64_t bucket_width() const { return width_; }
    std::uint64_t resizes() const { return resizes_; }

private:
    std::size_t bucket_of(std::uint64_t tag) const {
        return static_cast<std::size_t>((tag / width_) % buckets_.size());
    }
    void insert_into_bucket(std::uint64_t tag, std::uint32_t payload);
    void maybe_resize();
    /// Locate the global minimum by scanning every bucket head (the
    /// calendar's slow path after an empty year).
    std::optional<QueueEntry> direct_search_pop();

    std::vector<std::list<QueueEntry>> buckets_;
    std::uint64_t width_;
    std::size_t size_ = 0;
    // Serving position: the "today" pointer of the calendar.
    std::size_t cursor_ = 0;
    std::uint64_t day_start_ = 0;  ///< lower tag bound of the cursor bucket
    std::uint64_t resizes_ = 0;
};

}  // namespace wfqs::baselines
