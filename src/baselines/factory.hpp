// Factory over every tag-queue structure of Table I, including the
// paper's multi-bit tree sorter itself (wrapped behind the same
// interface with its SRAM traffic as the access count), so benches and
// tests can sweep all of them over identical workloads.
#pragma once

#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "baselines/tag_queue.hpp"

namespace wfqs::baselines {

enum class QueueKind {
    MultibitTree,  ///< the paper's sorter (src/core)
    BinaryTree,    ///< same circuit, branching factor 2 (Table I "tree")
    Heap,
    SortedList,
    Skiplist,
    Calendar,
    Tcq,
    Binning,
    BinaryCam,
    Tcam,
    Veb,
};

/// Which implementation backs the sorter-based kinds (MultibitTree /
/// BinaryTree). The software baselines ignore this.
enum class SorterBackend {
    kModel,  ///< cycle-accurate SRAM-modeled circuit (core::TagSorter)
    kFfs,    ///< host-native hierarchical-bitmap sorter (core::FfsSorter)
};

std::string backend_name(SorterBackend backend);
std::optional<SorterBackend> backend_from_name(std::string_view name);
const std::vector<SorterBackend>& all_sorter_backends();

struct QueueParams {
    unsigned range_bits = 12;     ///< tag universe for bounded structures
    std::size_t capacity = 8192;  ///< slot budget for the sorter variants
    /// Sorter banks (power of two). The slot budget is split across
    /// banks rounding up (ceil(capacity / num_banks) per bank), so the
    /// aggregate capacity never drops below the request; 1 (the default)
    /// is bit- and cycle-identical to the unsharded circuit. Ignored by
    /// the software baselines.
    unsigned num_banks = 1;
    /// Sorter implementation behind the contract. kFfs drops the cycle
    /// model (simulation() is null, accesses count 1 per op) in exchange
    /// for host-native wall-clock speed.
    SorterBackend backend = SorterBackend::kModel;
};

std::unique_ptr<TagQueue> make_tag_queue(QueueKind kind, const QueueParams& params = {});
const std::vector<QueueKind>& all_queue_kinds();
std::string queue_kind_name(QueueKind kind);

}  // namespace wfqs::baselines
