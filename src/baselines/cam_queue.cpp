#include "baselines/cam_queue.hpp"

#include "common/assert.hpp"

namespace wfqs::baselines {

// ------------------------------------------------------------ binary CAM

BinaryCamQueue::BinaryCamQueue(unsigned range_bits) {
    WFQS_REQUIRE(range_bits >= 1 && range_bits <= 24, "CAM range 1..24 bits");
    range_ = std::uint64_t{1} << range_bits;
    by_value_.assign(static_cast<std::size_t>(range_), {});
}

void BinaryCamQueue::insert(std::uint64_t tag, std::uint32_t payload) {
    WFQS_REQUIRE(tag < range_, "CAM tag exceeds the bounded universe");
    OpScope op(*this, OpScope::Kind::Insert);
    by_value_[tag].push_back(payload);
    touch();  // one CAM write
    if (tag < sweep_hint_) sweep_hint_ = tag;
    ++size_;
}

std::optional<QueueEntry> BinaryCamQueue::pop_min() {
    if (size_ == 0) return std::nullopt;
    OpScope op(*this, OpScope::Kind::Pop);
    // Iterative probe sweep: "incrementing a search by one value at a
    // time, which is very slow" (§II-D).
    for (std::uint64_t v = sweep_hint_; v < range_; ++v) {
        touch();  // one associative probe
        if (!by_value_[v].empty()) {
            const QueueEntry e{v, by_value_[v].front()};
            by_value_[v].pop_front();
            touch();  // entry invalidation write
            sweep_hint_ = v;  // minimum cannot move below a served value
            --size_;
            return e;
        }
    }
    WFQS_ASSERT_MSG(false, "CAM size out of sync");
    return std::nullopt;
}

std::optional<QueueEntry> BinaryCamQueue::peek_min() {
    for (std::uint64_t v = sweep_hint_; v < range_; ++v)
        if (!by_value_[v].empty()) return QueueEntry{v, by_value_[v].front()};
    return std::nullopt;
}

// ----------------------------------------------------------------- TCAM

TcamQueue::TcamQueue(unsigned range_bits) : range_bits_(range_bits) {
    WFQS_REQUIRE(range_bits >= 1 && range_bits <= 24, "TCAM range 1..24 bits");
    range_ = std::uint64_t{1} << range_bits;
    by_value_.assign(static_cast<std::size_t>(range_), {});
}

void TcamQueue::insert(std::uint64_t tag, std::uint32_t payload) {
    WFQS_REQUIRE(tag < range_, "TCAM tag exceeds the bounded universe");
    OpScope op(*this, OpScope::Kind::Insert);
    values_.insert(tag);
    by_value_[tag].push_back(payload);
    touch();  // one TCAM write
    ++size_;
}

bool TcamQueue::probe(std::uint64_t prefix, unsigned low_bits) {
    touch();  // one masked associative probe
    const auto it = values_.lower_bound(prefix);
    return it != values_.end() && *it < prefix + (std::uint64_t{1} << low_bits);
}

std::optional<QueueEntry> TcamQueue::pop_min() {
    if (size_ == 0) return std::nullopt;
    OpScope op(*this, OpScope::Kind::Pop);
    // Bit-wise iterative search with masked bits: descend from the MSB,
    // trying 0 first at each position. W probes total.
    std::uint64_t prefix = 0;
    for (unsigned bit = range_bits_; bit-- > 0;) {
        if (!probe(prefix, bit)) prefix |= std::uint64_t{1} << bit;
    }
    WFQS_ASSERT(!by_value_[prefix].empty());
    const QueueEntry e{prefix, by_value_[prefix].front()};
    by_value_[prefix].pop_front();
    values_.erase(values_.find(prefix));
    touch();  // entry invalidation write
    --size_;
    return e;
}

std::optional<QueueEntry> TcamQueue::peek_min() {
    if (values_.empty()) return std::nullopt;
    const std::uint64_t v = *values_.begin();
    return QueueEntry{v, by_value_[v].front()};
}

}  // namespace wfqs::baselines
