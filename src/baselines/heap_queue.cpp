#include "baselines/heap_queue.hpp"

#include <utility>

namespace wfqs::baselines {

void HeapTagQueue::sift_up(std::size_t i) {
    while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        touch(2);  // read parent, read child
        if (!(heap_[i] < heap_[parent])) break;
        std::swap(heap_[i], heap_[parent]);
        touch(2);  // write both
        i = parent;
    }
}

void HeapTagQueue::sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    while (true) {
        std::size_t smallest = i;
        const std::size_t l = 2 * i + 1;
        const std::size_t r = 2 * i + 2;
        if (l < n) {
            touch();
            if (heap_[l] < heap_[smallest]) smallest = l;
        }
        if (r < n) {
            touch();
            if (heap_[r] < heap_[smallest]) smallest = r;
        }
        if (smallest == i) break;
        std::swap(heap_[i], heap_[smallest]);
        touch(2);
        i = smallest;
    }
}

void HeapTagQueue::insert(std::uint64_t tag, std::uint32_t payload) {
    OpScope op(*this, OpScope::Kind::Insert);
    heap_.push_back(Node{tag, next_seq_++, payload});
    touch();  // write the new leaf
    sift_up(heap_.size() - 1);
}

std::optional<QueueEntry> HeapTagQueue::pop_min() {
    if (heap_.empty()) return std::nullopt;
    OpScope op(*this, OpScope::Kind::Pop);
    touch();  // read the root
    const QueueEntry result{heap_.front().tag, heap_.front().payload};
    heap_.front() = heap_.back();
    heap_.pop_back();
    touch();  // move the last leaf to the root
    if (!heap_.empty()) sift_down(0);
    return result;
}

std::optional<QueueEntry> HeapTagQueue::peek_min() {
    if (heap_.empty()) return std::nullopt;
    return QueueEntry{heap_.front().tag, heap_.front().payload};
}

}  // namespace wfqs::baselines
