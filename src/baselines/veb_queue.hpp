// van Emde Boas tree — the classic O(log log R) bounded-universe priority
// queue (the paper's ref [10]). Table I's fastest *software* option; the
// paper notes the method "is unsuitable for implementation in hardware"
// (deep pointer recursion, irregular memory). Each visited vEB node
// counts as one memory access.
//
// Duplicates are held in per-value FIFOs; the vEB structure stores the
// set of distinct live values. Tags must be < range.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "baselines/tag_queue.hpp"

namespace wfqs::baselines {

class VebQueue final : public TagQueue {
public:
    explicit VebQueue(unsigned range_bits = 12);
    ~VebQueue() override;

    void insert(std::uint64_t tag, std::uint32_t payload) override;
    std::optional<QueueEntry> pop_min() override;
    std::optional<QueueEntry> peek_min() override;

    std::size_t size() const override { return size_; }
    std::string name() const override { return "van Emde Boas"; }
    std::string model() const override { return "sort"; }
    std::string complexity() const override { return "O(log log R)"; }

private:
    struct Node;
    Node* root_;
    std::uint64_t range_;
    std::vector<std::deque<std::uint32_t>> by_value_;
    std::size_t size_ = 0;

    void veb_insert(Node& node, std::uint64_t x);
    void veb_erase(Node& node, std::uint64_t x);
};

}  // namespace wfqs::baselines
