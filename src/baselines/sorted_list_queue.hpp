// Sorted linked-list insertion — the naive O(N) software sort-model
// baseline: what the paper's linked-list storage would cost *without* the
// tree + translation table finding the insertion point.
#pragma once

#include <cstdint>
#include <list>

#include "baselines/tag_queue.hpp"

namespace wfqs::baselines {

class SortedListQueue final : public TagQueue {
public:
    void insert(std::uint64_t tag, std::uint32_t payload) override;
    std::optional<QueueEntry> pop_min() override;
    std::optional<QueueEntry> peek_min() override;

    std::size_t size() const override { return list_.size(); }
    std::string name() const override { return "sorted list (no tree)"; }
    std::string model() const override { return "sort"; }
    std::string complexity() const override { return "O(N)"; }

private:
    std::list<QueueEntry> list_;  ///< ascending by tag; FIFO within a tag
};

}  // namespace wfqs::baselines
