#include "common/table.hpp"

#include <algorithm>
#include <cstdio>

#include "common/assert.hpp"

namespace wfqs {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
    WFQS_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
    WFQS_REQUIRE(cells.size() == headers_.size(), "row arity must match header");
    rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", precision, v);
    return buf;
}

std::string TextTable::num(std::uint64_t v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
    return buf;
}

std::string TextTable::num(std::int64_t v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
}

std::string TextTable::render() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto render_row = [&](const std::vector<std::string>& row) {
        std::string line;
        for (std::size_t c = 0; c < row.size(); ++c) {
            line += "| ";
            line += row[c];
            line.append(widths[c] - row[c].size() + 1, ' ');
        }
        line += "|\n";
        return line;
    };

    std::string sep;
    for (auto w : widths) sep += "+" + std::string(w + 2, '-');
    sep += "+\n";

    std::string out = sep + render_row(headers_) + sep;
    for (const auto& row : rows_) out += render_row(row);
    out += sep;
    return out;
}

}  // namespace wfqs
