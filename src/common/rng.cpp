#include "common/rng.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace wfqs {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
}

// splitmix64 — seeds the xoshiro state from a single 64-bit value.
std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& s : s_) s = splitmix64(x);
    // Avoid the (astronomically unlikely) all-zero state.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
    WFQS_ASSERT(bound != 0);
    // Lemire's rejection method for unbiased bounded generation.
    std::uint64_t x = next_u64();
    unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
        const std::uint64_t threshold = -bound % bound;
        while (lo < threshold) {
            x = next_u64();
            m = static_cast<unsigned __int128>(x) * bound;
            lo = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t Rng::next_range(std::uint64_t lo, std::uint64_t hi) {
    WFQS_ASSERT(lo <= hi);
    return lo + next_below(hi - lo + 1);
}

double Rng::next_double() {
    // 53 random mantissa bits.
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p_true) { return next_double() < p_true; }

double Rng::next_exponential(double mean) {
    WFQS_ASSERT(mean > 0.0);
    double u = next_double();
    if (u <= 0.0) u = 0x1.0p-53;  // avoid log(0)
    return -mean * std::log(u);
}

double Rng::next_pareto(double alpha, double xm) {
    WFQS_ASSERT(alpha > 0.0 && xm > 0.0);
    double u = next_double();
    if (u <= 0.0) u = 0x1.0p-53;
    return xm / std::pow(u, 1.0 / alpha);
}

double Rng::next_normal(double mu, double sigma) {
    double u1 = next_double();
    const double u2 = next_double();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double r = std::sqrt(-2.0 * std::log(u1));
    return mu + sigma * r * std::cos(2.0 * M_PI * u2);
}

std::size_t Rng::next_weighted(const std::vector<double>& weights) {
    WFQS_ASSERT(!weights.empty());
    double total = 0.0;
    for (double w : weights) {
        WFQS_ASSERT(w >= 0.0);
        total += w;
    }
    WFQS_ASSERT(total > 0.0);
    double x = next_double() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        if (x < weights[i]) return i;
        x -= weights[i];
    }
    return weights.size() - 1;
}

}  // namespace wfqs
