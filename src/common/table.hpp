// Aligned plain-text tables for bench reports.
//
// Every bench binary reproduces a table or figure from the paper; this
// formatter keeps their output uniform and diff-friendly.
#pragma once

#include <string>
#include <vector>

namespace wfqs {

class TextTable {
public:
    explicit TextTable(std::vector<std::string> headers);

    /// Append a data row; must have the same arity as the header row.
    void add_row(std::vector<std::string> cells);

    /// Formatting helpers for numeric cells.
    static std::string num(double v, int precision = 2);
    static std::string num(std::uint64_t v);
    static std::string num(std::int64_t v);

    std::string render() const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace wfqs
