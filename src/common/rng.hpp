// Deterministic random number generation for traffic synthesis and
// property tests.
//
// Everything that needs randomness takes an explicit Rng& so experiments
// are reproducible from a single seed printed in every report.
#pragma once

#include <cstdint>
#include <vector>

namespace wfqs {

/// xoshiro256** — fast, high-quality, and fully deterministic across
/// platforms (unlike std:: distributions, whose outputs are
/// implementation-defined). All distribution sampling is implemented here
/// by hand for that reason.
class Rng {
public:
    explicit Rng(std::uint64_t seed);

    std::uint64_t next_u64();

    /// Uniform in [0, bound) without modulo bias.
    std::uint64_t next_below(std::uint64_t bound);

    /// Uniform in [lo, hi] inclusive.
    std::uint64_t next_range(std::uint64_t lo, std::uint64_t hi);

    /// Uniform in [0, 1).
    double next_double();

    bool next_bool(double p_true = 0.5);

    /// Exponential with the given mean (> 0).
    double next_exponential(double mean);

    /// Pareto with shape alpha (> 0) and minimum xm (> 0). Heavy-tailed;
    /// used for bursty on/off traffic per the self-similar-traffic
    /// literature the paper's workload discussion implies.
    double next_pareto(double alpha, double xm);

    /// Normal via Box–Muller (mean mu, stddev sigma).
    double next_normal(double mu, double sigma);

    /// Sample an index in [0, weights.size()) proportionally to weights.
    std::size_t next_weighted(const std::vector<double>& weights);

private:
    std::uint64_t s_[4];
};

}  // namespace wfqs
