#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace wfqs {

void RunningStats::add(double x) {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return n_ == 0 ? 0.0 : min_; }

double RunningStats::max() const { return n_ == 0 ? 0.0 : max_; }

void RunningStats::merge(const RunningStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double combined_mean = mean_ + delta * nb / (na + nb);
    m2_ = m2_ + other.m2_ + delta * delta * na * nb / (na + nb);
    mean_ = combined_mean;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
    n_ += other.n_;
}

RunningStats RunningStats::from_moments(std::uint64_t n, double mean, double m2,
                                        double min, double max, double sum) {
    RunningStats s;
    if (n == 0) return s;
    s.n_ = n;
    s.mean_ = mean;
    s.m2_ = m2 < 0.0 ? 0.0 : m2;  // guard tiny negative rounding residue
    s.min_ = min;
    s.max_ = max;
    s.sum_ = sum;
    return s;
}

double Quantiles::quantile(double q) {
    WFQS_ASSERT(q >= 0.0 && q <= 1.0);
    WFQS_ASSERT_MSG(!samples_.empty(), "quantile of empty sample set");
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    const double rank = q * static_cast<double>(samples_.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
    WFQS_REQUIRE(hi > lo, "histogram range must be non-empty");
    WFQS_REQUIRE(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) {
    if (std::isnan(x)) {
        // static_cast of NaN to an integer is UB; count it separately
        // instead of crediting an arbitrary bin.
        ++nan_rejects_;
        return;
    }
    const double span = hi_ - lo_;
    double idx = (x - lo_) / span * static_cast<double>(counts_.size());
    if (idx < 0) idx = 0;
    std::size_t i = static_cast<std::size_t>(idx);
    if (i >= counts_.size()) i = counts_.size() - 1;
    ++counts_[i];
    ++total_;
}

void Histogram::merge(const Histogram& other) {
    WFQS_REQUIRE(lo_ == other.lo_ && hi_ == other.hi_ &&
                     counts_.size() == other.counts_.size(),
                 "histogram merge needs identical bin geometry");
    for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
    total_ += other.total_;
    nan_rejects_ += other.nan_rejects_;
}

double Histogram::bin_lo(std::size_t i) const {
    return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

void Histogram::reset() {
    std::fill(counts_.begin(), counts_.end(), 0);
    total_ = 0;
    nan_rejects_ = 0;
}

std::string Histogram::ascii_bars(std::size_t height) const {
    std::uint64_t peak = 0;
    for (auto c : counts_) peak = std::max(peak, c);
    std::string out;
    if (peak == 0) peak = 1;
    for (std::size_t row = height; row-- > 0;) {
        const std::uint64_t threshold = peak * row / height;
        for (auto c : counts_) out += (c > threshold) ? '#' : ' ';
        out += '\n';
    }
    return out;
}

}  // namespace wfqs
