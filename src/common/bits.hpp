// Bit-manipulation helpers shared by the tree, matcher, and storage models.
//
// All node words in the multi-bit tree are manipulated through these
// functions so that the software model and the gate-level matcher netlists
// agree on bit numbering: bit i of a node word corresponds to literal value
// i, with literal 0 the *smallest*.
#pragma once

#include <bit>
#include <cstdint>

#include "common/assert.hpp"

namespace wfqs {

/// Mask with the low `n` bits set. `n` may be 0..64.
constexpr std::uint64_t low_mask(unsigned n) {
    return n >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;
}

/// Extract the `bits`-wide literal at literal-index `level_from_top` of a
/// `total_levels * bits`-wide value, where level 0 is the most significant
/// literal (the root of the tree).
constexpr std::uint32_t extract_literal(std::uint64_t value, unsigned level_from_top,
                                        unsigned bits, unsigned total_levels) {
    const unsigned shift = (total_levels - 1 - level_from_top) * bits;
    return static_cast<std::uint32_t>((value >> shift) & low_mask(bits));
}

/// Replace the literal at `level_from_top` of `value` with `literal`.
constexpr std::uint64_t replace_literal(std::uint64_t value, unsigned level_from_top,
                                        unsigned bits, unsigned total_levels,
                                        std::uint32_t literal) {
    const unsigned shift = (total_levels - 1 - level_from_top) * bits;
    const std::uint64_t m = low_mask(bits) << shift;
    return (value & ~m) | (std::uint64_t{literal} << shift);
}

/// Index of the highest set bit at or below position `pos` (inclusive), or
/// -1 if none. This is the "primary match" function of the paper's node
/// matching circuitry: exact match or next-smallest.
constexpr int highest_set_at_or_below(std::uint64_t word, unsigned pos) {
    const std::uint64_t masked = word & (pos >= 63 ? ~std::uint64_t{0}
                                                   : low_mask(pos + 1));
    return masked == 0 ? -1 : 63 - std::countl_zero(masked);
}

/// Index of the highest set bit strictly below `pos`, or -1. This is the
/// "backup match" (the next literal less than the primary target).
constexpr int highest_set_below(std::uint64_t word, unsigned pos) {
    if (pos == 0) return -1;
    return highest_set_at_or_below(word, pos - 1);
}

/// Index of the highest set bit of `word`, or -1 if zero. Used when
/// descending a backup path ("follow the largest literal in each node").
constexpr int highest_set(std::uint64_t word) {
    return word == 0 ? -1 : 63 - std::countl_zero(word);
}

/// Index of the lowest set bit, or -1 if zero.
constexpr int lowest_set(std::uint64_t word) {
    return word == 0 ? -1 : std::countr_zero(word);
}

constexpr bool bit_is_set(std::uint64_t word, unsigned pos) {
    return ((word >> pos) & 1u) != 0;
}

constexpr std::uint64_t set_bit(std::uint64_t word, unsigned pos) {
    return word | (std::uint64_t{1} << pos);
}

constexpr std::uint64_t clear_bit(std::uint64_t word, unsigned pos) {
    return word & ~(std::uint64_t{1} << pos);
}

/// ceil(a / b) for positive integers.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
    return (a + b - 1) / b;
}

/// Integer log2 of a power of two.
constexpr unsigned log2_exact(std::uint64_t v) {
    WFQS_ASSERT(v != 0 && (v & (v - 1)) == 0);
    return static_cast<unsigned>(std::countr_zero(v));
}

}  // namespace wfqs
