// Fixed-point virtual time.
//
// WFQ virtual time and finishing tags are real numbers in the algorithmic
// description; the hardware (and any deterministic reproduction) needs an
// exact representation. We use unsigned 64-bit fixed point with 2^32
// fractional resolution, matching the style of the paper's tag computation
// circuit [8] which produces fixed-width integer tags.
#pragma once

#include <cstdint>
#include <limits>

#include "common/assert.hpp"

namespace wfqs {

/// Q32.32 unsigned fixed-point value. Cheap value type; arithmetic is
/// saturating-free (asserts on overflow) because virtual time in a correctly
/// operating scheduler never overflows 2^32 seconds-equivalent.
class Fixed {
public:
    static constexpr unsigned kFracBits = 32;
    static constexpr std::uint64_t kOne = std::uint64_t{1} << kFracBits;

    constexpr Fixed() = default;
    static constexpr Fixed from_raw(std::uint64_t raw) {
        Fixed f;
        f.raw_ = raw;
        return f;
    }
    static constexpr Fixed from_int(std::uint64_t v) { return from_raw(v << kFracBits); }
    static Fixed from_double(double v) {
        WFQS_ASSERT_MSG(v >= 0.0, "Fixed is unsigned");
        return from_raw(static_cast<std::uint64_t>(v * static_cast<double>(kOne)));
    }

    constexpr std::uint64_t raw() const { return raw_; }
    constexpr std::uint64_t floor() const { return raw_ >> kFracBits; }
    double to_double() const { return static_cast<double>(raw_) / static_cast<double>(kOne); }

    /// ratio = numerator / denominator as fixed point, exact to 1 ulp.
    static Fixed ratio(std::uint64_t numerator, std::uint64_t denominator) {
        WFQS_ASSERT(denominator != 0);
        const unsigned __int128 scaled =
            static_cast<unsigned __int128>(numerator) << kFracBits;
        const unsigned __int128 q = scaled / denominator;
        WFQS_ASSERT_MSG(q <= std::numeric_limits<std::uint64_t>::max(),
                        "Fixed::ratio overflow");
        return from_raw(static_cast<std::uint64_t>(q));
    }

    /// this * num / den, computed in 128-bit to avoid intermediate overflow.
    Fixed mul_ratio(std::uint64_t num, std::uint64_t den) const {
        WFQS_ASSERT(den != 0);
        const unsigned __int128 p = static_cast<unsigned __int128>(raw_) * num / den;
        WFQS_ASSERT_MSG(p <= std::numeric_limits<std::uint64_t>::max(),
                        "Fixed::mul_ratio overflow");
        return from_raw(static_cast<std::uint64_t>(p));
    }

    friend constexpr Fixed operator+(Fixed a, Fixed b) {
        const std::uint64_t s = a.raw_ + b.raw_;
        WFQS_ASSERT_MSG(s >= a.raw_, "Fixed overflow");
        return from_raw(s);
    }
    friend constexpr Fixed operator-(Fixed a, Fixed b) {
        WFQS_ASSERT_MSG(a.raw_ >= b.raw_, "Fixed underflow");
        return from_raw(a.raw_ - b.raw_);
    }
    friend constexpr auto operator<=>(Fixed a, Fixed b) = default;

    Fixed& operator+=(Fixed b) { return *this = *this + b; }

private:
    std::uint64_t raw_ = 0;
};

inline Fixed max(Fixed a, Fixed b) { return a < b ? b : a; }
inline Fixed min(Fixed a, Fixed b) { return a < b ? a : b; }

}  // namespace wfqs
