// Contract helpers used across the library.
//
// WFQS_REQUIRE  — precondition on public API input; always checked, throws
//                 std::invalid_argument so configuration errors surface to
//                 callers as recoverable errors.
// WFQS_ASSERT   — internal datapath invariant; aborts with a message. Cheap
//                 enough to keep enabled in all build types: the simulated
//                 circuits rely on these to model "impossible in hardware"
//                 states honestly.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace wfqs {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const std::string& msg) {
    std::fprintf(stderr, "WFQS_ASSERT failed: %s at %s:%d%s%s\n", expr, file, line,
                 msg.empty() ? "" : " — ", msg.c_str());
    std::abort();
}

}  // namespace wfqs

#define WFQS_ASSERT(expr)                                              \
    do {                                                               \
        if (!(expr)) ::wfqs::assert_fail(#expr, __FILE__, __LINE__, {}); \
    } while (0)

#define WFQS_ASSERT_MSG(expr, msg)                                       \
    do {                                                                 \
        if (!(expr)) ::wfqs::assert_fail(#expr, __FILE__, __LINE__, msg); \
    } while (0)

#define WFQS_REQUIRE(expr, what)                                  \
    do {                                                          \
        if (!(expr)) throw std::invalid_argument(std::string(what) + \
                                                 " (violated: " #expr ")"); \
    } while (0)
