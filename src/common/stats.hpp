// Statistics accumulators used by the analysis module and benches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace wfqs {

/// Streaming mean/variance/min/max (Welford). O(1) memory; exact min/max.
class RunningStats {
public:
    void add(double x);

    std::uint64_t count() const { return n_; }
    double mean() const;
    double variance() const;  ///< Sample variance (n-1 denominator).
    double stddev() const;
    double min() const;
    double max() const;
    double sum() const { return sum_; }

    void merge(const RunningStats& other);

    /// Reconstitute an accumulator from externally tracked moments (the
    /// integer fast lane of obs::CycleHistogram). `m2` is the sum of
    /// squared deviations from `mean` (n * variance_population).
    static RunningStats from_moments(std::uint64_t n, double mean, double m2,
                                     double min, double max, double sum);

private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/// Reservoir of samples with exact quantiles. Stores everything; callers
/// that stream millions of points should use Histogram instead.
class Quantiles {
public:
    void add(double x) { samples_.push_back(x); sorted_ = false; }
    std::uint64_t count() const { return samples_.size(); }
    /// q in [0,1]; q=0.5 is the median. Linear interpolation between ranks.
    double quantile(double q);

private:
    std::vector<double> samples_;
    bool sorted_ = true;
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp into the
/// first/last bin. NaN samples are rejected into a dedicated counter —
/// casting NaN to an index is UB and would land in an arbitrary bin.
/// Used to reproduce the Fig. 6 tag-value distribution.
class Histogram {
public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x);
    /// Direct single-bin credit for callers that already know the bin
    /// index (the integer fast lane). Precondition: bin < bin_count().
    void bump(std::size_t bin, std::uint64_t n = 1) {
        counts_[bin] += n;
        total_ += n;
    }
    /// Fold another histogram's counts in. Geometries must be identical.
    void merge(const Histogram& other);
    std::uint64_t total() const { return total_; }
    std::uint64_t nan_rejects() const { return nan_rejects_; }
    std::size_t bin_count() const { return counts_.size(); }
    std::uint64_t bin(std::size_t i) const { return counts_.at(i); }
    double bin_lo(std::size_t i) const;
    double bin_hi(std::size_t i) const;
    void reset();

    /// Render as a row of bar heights (ASCII), normalised to `width` chars.
    std::string ascii_bars(std::size_t height = 8) const;

private:
    double lo_;
    double hi_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
    std::uint64_t nan_rejects_ = 0;
};

}  // namespace wfqs
