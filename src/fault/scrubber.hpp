// The self-healing driver: turns a faulted TagSorter back into a
// consistent one, escalating as little as possible.
//
//   scrub() = relaunder ECC state → audit → (clean | repair | rebuild)
//
// 1. *Relaunder*: every protected memory corrects its correctable words
//    and makes uncorrectable ones authoritative, so the datapath cannot
//    keep throwing on a word the audit already judged.
// 2. *Audit*: TagSorter::audit() cross-checks the three entities.
// 3. *Repair*: when every issue is reconstructible from the linked list,
//    TagSorter::repair() fixes them off the datapath and a verification
//    audit confirms the result.
// 4. *Rebuild*: anything else drains the salvageable entries and
//    re-sorts them (TagSorter::rebuild()); packets whose tags were
//    destroyed are lost and counted, never silently reordered.
//
// The scrubber is stateless between calls except for its tallies, so one
// instance can serve a long soak or be constructed per recovery.
#pragma once

#include <cstdint>
#include <string>

namespace wfqs::core {
class TagSorter;
}
namespace wfqs::obs {
class MetricsRegistry;
}

namespace wfqs::fault {

enum class ScrubAction {
    kClean,     ///< audit found nothing to do
    kRepaired,  ///< targeted repair, verified by a second audit
    kRebuilt,   ///< drain-and-resort fallback
};

const char* to_string(ScrubAction action);

struct ScrubOutcome {
    ScrubAction action = ScrubAction::kClean;
    std::size_t issues = 0;        ///< audit issues that triggered the action
    std::size_t entries_lost = 0;  ///< entries a rebuild could not salvage
};

struct ScrubberStats {
    std::uint64_t scrubs = 0;
    std::uint64_t clean = 0;
    std::uint64_t repaired = 0;
    std::uint64_t rebuilt = 0;
    std::uint64_t issues_seen = 0;
    std::uint64_t entries_lost = 0;
};

class Scrubber {
public:
    explicit Scrubber(core::TagSorter& sorter) : sorter_(sorter) {}

    /// Run one full scrub pass; always leaves the sorter consistent.
    ScrubOutcome scrub();

    const ScrubberStats& stats() const { return stats_; }

    /// `<prefix>.{scrubs,clean,repaired,rebuilt,issues_seen,entries_lost}`.
    void register_metrics(obs::MetricsRegistry& registry,
                          const std::string& prefix = "scrub") const;

private:
    core::TagSorter& sorter_;
    ScrubberStats stats_;
};

}  // namespace wfqs::fault
