// Typed error hierarchy for the fault/integrity subsystem.
//
// The seed model treated every anomaly as "impossible in hardware" and
// aborted. With a fault model attached (src/fault/injector.hpp), many of
// those states are *reachable* — an SEU can break a linked-list pointer
// or clear a tree marker — so the anomalies that injected faults can
// produce throw typed errors instead. Callers (the scrubber, the
// simulation driver, the fault-soak harness) catch `FaultError` and run
// recovery; genuinely-unreachable C++ logic bugs keep WFQS_ASSERT.
//
//   FaultError                   — base of everything recoverable here
//   ├── SramAddressError         — access outside a memory block
//   ├── SramPortConflict         — port budget exceeded in one cycle
//   ├── SramInventoryError       — block exceeds the simulated inventory
//   └── IntegrityError           — corrupted circuit state detected
//       └── UncorrectableEccError — SECDED double-bit / parity word
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace wfqs::fault {

class FaultError : public std::runtime_error {
public:
    explicit FaultError(const std::string& what) : std::runtime_error(what) {}
};

/// Read/write/flash_clear outside a memory block's address space —
/// typically a corrupted pointer chased into the void.
class SramAddressError : public FaultError {
public:
    SramAddressError(std::string memory, std::size_t addr, const std::string& what)
        : FaultError(what), memory_(std::move(memory)), addr_(addr) {}

    const std::string& memory() const { return memory_; }
    std::size_t addr() const { return addr_; }

private:
    std::string memory_;
    std::size_t addr_;
};

/// More accesses to one memory in a single cycle than it has ports —
/// a bus conflict in silicon.
class SramPortConflict : public FaultError {
public:
    SramPortConflict(std::string memory, const std::string& what)
        : FaultError(what), memory_(std::move(memory)) {}

    const std::string& memory() const { return memory_; }

private:
    std::string memory_;
};

/// A requested memory block is larger than the simulated SRAM inventory
/// supports — e.g. a degenerate binary tree over a 32-bit tag space
/// would need a 2^31-word level. Thrown at construction, before any
/// allocation is attempted, so an impossible geometry fails with a
/// typed, catchable error instead of an allocation failure.
class SramInventoryError : public FaultError {
public:
    SramInventoryError(std::string memory, std::uint64_t requested_words,
                       std::uint64_t limit_words)
        : FaultError("SRAM '" + memory + "' exceeds the simulated inventory: " +
                     std::to_string(requested_words) + " words requested, " +
                     std::to_string(limit_words) + " available per block"),
          memory_(std::move(memory)),
          requested_words_(requested_words),
          limit_words_(limit_words) {}

    const std::string& memory() const { return memory_; }
    std::uint64_t requested_words() const { return requested_words_; }
    std::uint64_t limit_words() const { return limit_words_; }

private:
    std::string memory_;
    std::uint64_t requested_words_;
    std::uint64_t limit_words_;
};

/// What kind of corruption an IntegrityError reports. Coarse-grained —
/// the audit report (fault/audit.hpp) carries the per-issue detail.
enum class IntegrityKind {
    kEccUncorrectable,    ///< protection detected an unfixable word
    kBrokenLink,          ///< linked-list pointer chain is inconsistent
    kFreeList,            ///< empty (free) list chain is inconsistent
    kTranslationMissing,  ///< marked value without a translation entry
    kTranslationDangling, ///< translation entry pointing outside the store
    kTreeInvariant,       ///< marked tree node with no marked child, etc.
    kTagOrder,            ///< stored list is no longer sorted
};

inline const char* to_string(IntegrityKind kind) {
    switch (kind) {
        case IntegrityKind::kEccUncorrectable: return "ecc-uncorrectable";
        case IntegrityKind::kBrokenLink: return "broken-link";
        case IntegrityKind::kFreeList: return "free-list";
        case IntegrityKind::kTranslationMissing: return "translation-missing";
        case IntegrityKind::kTranslationDangling: return "translation-dangling";
        case IntegrityKind::kTreeInvariant: return "tree-invariant";
        case IntegrityKind::kTagOrder: return "tag-order";
    }
    return "unknown";
}

/// Corrupted circuit state detected on the datapath. The operation that
/// threw may have partially completed (hardware has no transactions);
/// recovery is a scrub — see fault::Scrubber.
class IntegrityError : public FaultError {
public:
    IntegrityError(IntegrityKind kind, const std::string& what)
        : FaultError(std::string(to_string(kind)) + ": " + what), kind_(kind) {}

    IntegrityKind kind() const { return kind_; }

private:
    IntegrityKind kind_;
};

/// The word protection detected an error it cannot correct (SECDED
/// double-bit flip, or any parity mismatch — parity only detects).
class UncorrectableEccError : public IntegrityError {
public:
    UncorrectableEccError(std::string memory, std::size_t addr)
        : IntegrityError(IntegrityKind::kEccUncorrectable,
                         "uncorrectable word in '" + memory + "' at address " +
                             std::to_string(addr)),
          memory_(std::move(memory)),
          addr_(addr) {}

    const std::string& memory() const { return memory_; }
    std::size_t addr() const { return addr_; }

private:
    std::string memory_;
    std::size_t addr_;
};

}  // namespace wfqs::fault
