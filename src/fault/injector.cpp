#include "fault/injector.hpp"

#include "hw/sram.hpp"
#include "obs/metrics.hpp"

namespace wfqs::fault {

const MemoryFaultModel& FaultInjector::model_for(const std::string& memory) const {
    const auto it = overrides_.find(memory);
    return it == overrides_.end() ? default_ : it->second;
}

void FaultInjector::on_access(hw::Sram& memory, std::size_t addr) {
    const MemoryFaultModel& model = model_for(memory.name());
    if (model.quiet()) return;
    ++stats_.accesses_seen;

    if (model.bit_flip_per_access > 0.0 &&
        rng_.next_bool(model.bit_flip_per_access)) {
        // One upset, uniform over the physical cells of the word: data
        // bits and (when protection is on) the stored check bits are
        // equally exposed silicon.
        const unsigned data_bits = memory.word_bits();
        const unsigned total = data_bits + memory.check_width();
        const unsigned bit = static_cast<unsigned>(rng_.next_below(total));
        if (bit < data_bits)
            memory.corrupt(addr, std::uint64_t{1} << bit);
        else
            memory.corrupt(addr, 0, std::uint64_t{1} << (bit - data_bits));
        ++stats_.transient_flips;
    }

    for (const StuckBit& stuck : model.stuck_bits) {
        if (stuck.addr != addr || stuck.bit >= memory.word_bits()) continue;
        const bool current = ((memory.peek(addr) >> stuck.bit) & 1u) != 0;
        if (current != stuck.value) {
            memory.corrupt(addr, std::uint64_t{1} << stuck.bit);
            ++stats_.stuck_forces;
        }
    }
}

void FaultInjector::register_metrics(obs::MetricsRegistry& registry,
                                     const std::string& prefix) const {
    registry.register_counter_fn(prefix + ".accesses_seen",
                                 [this] { return stats_.accesses_seen; });
    registry.register_counter_fn(prefix + ".transient_flips",
                                 [this] { return stats_.transient_flips; });
    registry.register_counter_fn(prefix + ".stuck_forces",
                                 [this] { return stats_.stuck_forces; });
    registry.register_counter_fn(prefix + ".seed", [this] { return seed_; });
}

}  // namespace wfqs::fault
