// Word protection codecs for the SRAM model: even parity (detect-only)
// and SECDED (single-error-correct, double-error-detect) Hamming codes.
//
// Check bits are stored *beside* the data word (hw::Sram keeps a side
// array), the way real SRAM macros widen the physical word; the data
// word itself stays bit-identical to the unprotected layout so packing
// code (linked-list slots, translation entries, tree nodes) never sees
// the code.
//
// The SECDED construction uses the classic positional-parity identity:
// with every data bit assigned a non-power-of-two codeword position, the
// Hamming check word equals the XOR of the positions of all set data
// bits, and the syndrome of a received word is the XOR of that recompute
// with the received check word — zero when clean, the error position for
// a single flip. An appended overall-parity bit separates single
// (correctable) from double (detect-only) errors.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace wfqs::fault {

enum class Protection {
    kNone,    ///< raw storage (the seed behaviour)
    kParity,  ///< one even-parity bit per word: detects any odd-bit flip
    kSecded,  ///< Hamming + overall parity: corrects 1, detects 2
};

const char* to_string(Protection p);
/// Parse "none"/"parity"/"secded" (bench CLI); nullopt on anything else.
std::optional<Protection> protection_from_string(const std::string& s);

enum class DecodeStatus {
    kClean,          ///< word matched its code
    kCorrected,      ///< single-bit error fixed (data or check bit)
    kUncorrectable,  ///< detected but unfixable; data returned raw
};

struct Decoded {
    std::uint64_t data = 0;   ///< corrected data (raw when uncorrectable)
    std::uint64_t check = 0;  ///< corrected check word
    DecodeStatus status = DecodeStatus::kClean;
};

/// Encoder/decoder for one word geometry. Construction precomputes the
/// position tables so the per-read decode is O(popcount), cheap enough
/// to leave on for multi-million-operation soak runs.
class EccCodec {
public:
    EccCodec() = default;  ///< Protection::kNone, zero check bits
    EccCodec(Protection protection, unsigned data_bits);

    Protection protection() const { return protection_; }
    /// Number of stored check bits (0 for kNone, 1 for parity,
    /// r+1 for SECDED).
    unsigned check_width() const { return check_width_; }

    /// Check word for `data` (bits above `data_bits` must be clear).
    std::uint64_t encode(std::uint64_t data) const;

    /// Validate and correct `data` against `check`.
    Decoded decode(std::uint64_t data, std::uint64_t check) const;

private:
    std::uint64_t hamming_of(std::uint64_t data) const;

    Protection protection_ = Protection::kNone;
    unsigned data_bits_ = 0;
    unsigned check_width_ = 0;
    unsigned hamming_bits_ = 0;           ///< r (SECDED only)
    std::vector<std::uint32_t> position_; ///< data bit -> codeword position
    std::vector<std::int32_t> data_at_;   ///< codeword position -> data bit, -1 = check
};

}  // namespace wfqs::fault
