#include "fault/ecc.hpp"

#include <bit>

#include "common/assert.hpp"

namespace wfqs::fault {

const char* to_string(Protection p) {
    switch (p) {
        case Protection::kNone: return "none";
        case Protection::kParity: return "parity";
        case Protection::kSecded: return "secded";
    }
    return "unknown";
}

std::optional<Protection> protection_from_string(const std::string& s) {
    if (s == "none") return Protection::kNone;
    if (s == "parity") return Protection::kParity;
    if (s == "secded") return Protection::kSecded;
    return std::nullopt;
}

namespace {
unsigned parity64(std::uint64_t x) {
    return static_cast<unsigned>(std::popcount(x)) & 1u;
}
bool is_pow2(std::uint32_t x) { return x != 0 && (x & (x - 1)) == 0; }
}  // namespace

EccCodec::EccCodec(Protection protection, unsigned data_bits)
    : protection_(protection), data_bits_(data_bits) {
    WFQS_REQUIRE(data_bits >= 1 && data_bits <= 64, "ECC data width must be 1..64");
    if (protection_ == Protection::kNone) return;
    if (protection_ == Protection::kParity) {
        check_width_ = 1;
        return;
    }
    // SECDED: smallest r with 2^r >= data_bits + r + 1, plus the overall
    // parity bit. 64-bit words land on the standard Hamming(72,64) r=7.
    unsigned r = 1;
    while ((std::uint64_t{1} << r) < data_bits_ + r + 1) ++r;
    hamming_bits_ = r;
    check_width_ = r + 1;
    WFQS_ASSERT(check_width_ <= 64);
    const std::uint32_t codeword_len = data_bits_ + r;  // positions 1..len
    position_.reserve(data_bits_);
    data_at_.assign(codeword_len + 1, -1);
    for (std::uint32_t pos = 1; pos <= codeword_len; ++pos) {
        if (is_pow2(pos)) continue;  // power-of-two positions hold check bits
        data_at_[pos] = static_cast<std::int32_t>(position_.size());
        position_.push_back(pos);
    }
    WFQS_ASSERT(position_.size() == data_bits_);
}

// Hamming check word = XOR of the positions of all set data bits (XOR of
// 2^i over the set bits of a position is the position itself, so the r
// check bits come out in one word).
std::uint64_t EccCodec::hamming_of(std::uint64_t data) const {
    std::uint64_t hamming = 0;
    while (data != 0) {
        const unsigned bit = static_cast<unsigned>(std::countr_zero(data));
        data &= data - 1;
        hamming ^= position_[bit];
    }
    return hamming;
}

std::uint64_t EccCodec::encode(std::uint64_t data) const {
    switch (protection_) {
        case Protection::kNone:
            return 0;
        case Protection::kParity:
            return parity64(data);
        case Protection::kSecded: {
            const std::uint64_t hamming = hamming_of(data);
            const std::uint64_t overall =
                static_cast<std::uint64_t>(parity64(data) ^ parity64(hamming));
            return hamming | (overall << hamming_bits_);
        }
    }
    return 0;
}

Decoded EccCodec::decode(std::uint64_t data, std::uint64_t check) const {
    Decoded out{data, check, DecodeStatus::kClean};
    switch (protection_) {
        case Protection::kNone:
            return out;
        case Protection::kParity:
            if ((parity64(data) ^ (check & 1u)) != 0)
                out.status = DecodeStatus::kUncorrectable;
            return out;
        case Protection::kSecded: {
            const std::uint64_t hamming_rx = check & ((std::uint64_t{1} << hamming_bits_) - 1);
            const unsigned overall_rx = static_cast<unsigned>((check >> hamming_bits_) & 1u);
            const std::uint64_t syndrome = hamming_rx ^ hamming_of(data);
            const unsigned overall_err =
                parity64(data) ^ parity64(hamming_rx) ^ overall_rx;
            if (syndrome == 0 && overall_err == 0) return out;
            if (overall_err == 0) {
                // Even number of flipped bits with a nonzero syndrome:
                // a double error — detectable, not correctable.
                out.status = DecodeStatus::kUncorrectable;
                return out;
            }
            // Odd error count: assume single and correct it.
            out.status = DecodeStatus::kCorrected;
            if (syndrome == 0) {
                // The overall parity bit itself flipped.
                out.check = check ^ (std::uint64_t{1} << hamming_bits_);
            } else if (syndrome < data_at_.size() && data_at_[syndrome] >= 0) {
                out.data = data ^ (std::uint64_t{1} << data_at_[syndrome]);
            } else if (is_pow2(static_cast<std::uint32_t>(syndrome)) &&
                       syndrome < data_at_.size()) {
                // A Hamming check bit flipped (power-of-two position).
                const unsigned idx =
                    static_cast<unsigned>(std::countr_zero(syndrome));
                out.check = check ^ (std::uint64_t{1} << idx);
            } else {
                // Syndrome points outside the codeword: ≥3 flips landed in
                // a pattern that mimics a single error somewhere invalid.
                out.status = DecodeStatus::kUncorrectable;
                out.data = data;
                out.check = check;
            }
            return out;
        }
    }
    return out;
}

}  // namespace wfqs::fault
