// Deterministic, seeded SEU injection for the SRAM model.
//
// The injector is attached to a Simulation (or a single Sram) and is
// invoked by the memory on every datapath access. Two fault classes:
//
//   * transient bit-flips — with a configurable per-access probability,
//     one uniformly-chosen stored bit of the accessed word (data or ECC
//     check bit) is flipped *in storage*, modelling a particle upset that
//     persists until the word is rewritten or corrected;
//   * stuck-at bits — named (addr, bit, value) cells that are re-forced
//     to their stuck value on every access, surviving writes and flash
//     clears, modelling manufacturing/wear-out defects.
//
// Rates are configurable per memory block (the external tag-store SRAM
// of the paper is a much bigger soft-error target than the 272 bits of
// register tree levels) with a default for unnamed blocks. Everything is
// driven by one xoshiro stream seeded from a single value, so a soak
// failure replays exactly from its printed seed.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace wfqs::obs {
class MetricsRegistry;
}

namespace wfqs::hw {
class Sram;
}

namespace wfqs::fault {

struct StuckBit {
    std::size_t addr = 0;
    unsigned bit = 0;    ///< data bit index (must be < word_bits)
    bool value = false;  ///< the level the cell is stuck at
};

struct MemoryFaultModel {
    /// Probability that one stored bit of the accessed word flips, per
    /// datapath access (read, write, or flash-clear).
    double bit_flip_per_access = 0.0;
    std::vector<StuckBit> stuck_bits;

    bool quiet() const { return bit_flip_per_access <= 0.0 && stuck_bits.empty(); }
};

struct InjectorStats {
    std::uint64_t accesses_seen = 0;
    std::uint64_t transient_flips = 0;  ///< bits actually flipped
    std::uint64_t stuck_forces = 0;     ///< stuck cells re-forced to a new value
};

class FaultInjector {
public:
    explicit FaultInjector(std::uint64_t seed) : seed_(seed), rng_(seed) {}

    std::uint64_t seed() const { return seed_; }

    /// Model for memories without a named override.
    void set_default_model(const MemoryFaultModel& model) { default_ = model; }
    /// Per-memory override, keyed by the Sram's name.
    void set_model(const std::string& memory, const MemoryFaultModel& model) {
        overrides_[memory] = model;
    }
    const MemoryFaultModel& model_for(const std::string& memory) const;

    /// Hook called by hw::Sram on every datapath access to `addr`,
    /// *before* ECC decode on reads. Mutates the stored word through the
    /// memory's corrupt()/raw inspection API.
    void on_access(hw::Sram& memory, std::size_t addr);

    const InjectorStats& stats() const { return stats_; }

    /// `<prefix>.{accesses_seen,transient_flips,stuck_forces,seed}` views.
    void register_metrics(obs::MetricsRegistry& registry,
                          const std::string& prefix = "fault") const;

private:
    std::uint64_t seed_;
    Rng rng_;
    MemoryFaultModel default_;
    std::map<std::string, MemoryFaultModel> overrides_;
    InjectorStats stats_;
};

}  // namespace wfqs::fault
