// Audit report types shared by the integrity machinery.
//
// The sorter's three entities store the same information three ways: a
// value with live entries has (1) linked-list slots carrying the tag,
// (2) a tree marker, and (3) a translation entry naming its newest slot,
// while every freed slot is exactly a fresh-allocated slot that is not
// live. TagSorter::audit() cross-checks that redundancy and returns one
// AuditIssue per discrepancy; TagSorter::repair() fixes every issue the
// redundancy can reconstruct (the linked list is the ground truth), and
// TagSorter::rebuild() is the last resort when the list itself is broken.
//
// This header is deliberately leaf-level (no core/ includes) so hw and
// storage code can reference the types without cycles.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "fault/errors.hpp"

namespace wfqs::fault {

struct AuditIssue {
    IntegrityKind kind;
    std::string detail;
    /// True when repair() can reconstruct the damaged structure from the
    /// surviving redundancy; false means only rebuild() helps.
    bool repairable = false;
};

struct AuditReport {
    std::vector<AuditIssue> issues;
    std::size_t entries_walked = 0;  ///< list entries reached before any break

    bool clean() const { return issues.empty(); }
    bool fully_repairable() const {
        for (const AuditIssue& i : issues)
            if (!i.repairable) return false;
        return true;
    }
    std::size_t count(IntegrityKind kind) const {
        std::size_t n = 0;
        for (const AuditIssue& i : issues) n += i.kind == kind ? 1 : 0;
        return n;
    }
};

}  // namespace wfqs::fault
