#include "fault/scrubber.hpp"

#include "core/tag_sorter.hpp"
#include "obs/metrics.hpp"

namespace wfqs::fault {

const char* to_string(ScrubAction action) {
    switch (action) {
        case ScrubAction::kClean: return "clean";
        case ScrubAction::kRepaired: return "repaired";
        case ScrubAction::kRebuilt: return "rebuilt";
    }
    return "unknown";
}

ScrubOutcome Scrubber::scrub() {
    ++stats_.scrubs;

    // A recovery occupies the datapath for at least one cycle. This also
    // releases the current cycle's SRAM port budgets: the faulted op may
    // have charged a port before throwing, and a retry in the same cycle
    // would livelock on the resulting port conflict.
    sorter_.clock().advance();

    // Settle the ECC state first: whatever the audit decides, no datapath
    // access may keep throwing on a word the scrub has already seen.
    sorter_.store().memory().relaunder();
    sorter_.table().memory().relaunder();
    sorter_.search_tree().relaunder();

    ScrubOutcome outcome;
    const AuditReport report = sorter_.audit();
    outcome.issues = report.issues.size();
    stats_.issues_seen += report.issues.size();
    if (report.clean()) {
        ++stats_.clean;
        return outcome;
    }

    if (report.fully_repairable() && sorter_.repair(report)) {
        // Trust but verify: a repair that leaves residue is not a repair.
        if (sorter_.audit().clean()) {
            outcome.action = ScrubAction::kRepaired;
            ++stats_.repaired;
            return outcome;
        }
    }

    outcome.entries_lost = sorter_.rebuild();
    outcome.action = ScrubAction::kRebuilt;
    ++stats_.rebuilt;
    stats_.entries_lost += outcome.entries_lost;
    return outcome;
}

void Scrubber::register_metrics(obs::MetricsRegistry& registry,
                                const std::string& prefix) const {
    const auto cnt = [&](const char* name, const std::uint64_t ScrubberStats::*field) {
        registry.register_counter_fn(prefix + "." + name,
                                     [this, field] { return stats_.*field; });
    };
    cnt("scrubs", &ScrubberStats::scrubs);
    cnt("clean", &ScrubberStats::clean);
    cnt("repaired", &ScrubberStats::repaired);
    cnt("rebuilt", &ScrubberStats::rebuilt);
    cnt("issues_seen", &ScrubberStats::issues_seen);
    cnt("entries_lost", &ScrubberStats::entries_lost);
}

}  // namespace wfqs::fault
