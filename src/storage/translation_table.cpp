#include "storage/translation_table.hpp"

#include "common/assert.hpp"

namespace wfqs::storage {
namespace {
// The paper's translation table occupies 8 large banked memory blocks, so
// a lookup and an update (plus neighbouring pipeline traffic) coexist in
// one cycle.
constexpr unsigned kTablePorts = 4;
}  // namespace

TranslationTable::TranslationTable(const Config& config, hw::Simulation& sim)
    : config_(config),
      sram_([&]() -> hw::Sram& {
          WFQS_REQUIRE(config.tag_bits >= 1 && config.tag_bits <= 28,
                       "translation table capped at 2^28 entries");
          WFQS_REQUIRE(config.addr_bits >= 1 && config.addr_bits <= 32,
                       "list address width must be 1..32 bits");
          return sim.make_sram("translation-table",
                               std::size_t{1} << config.tag_bits,
                               config.addr_bits + 1,  // +1 valid bit
                               kTablePorts);
      }()) {}

std::optional<Addr> TranslationTable::lookup(std::uint64_t value) {
    WFQS_ASSERT(value < entries());
    const std::uint64_t word = sram_.read(value);
    if ((word & 1u) == 0) return std::nullopt;
    return static_cast<Addr>(word >> 1);
}

void TranslationTable::set(std::uint64_t value, Addr addr) {
    WFQS_ASSERT(value < entries());
    WFQS_ASSERT(addr < (std::uint64_t{1} << config_.addr_bits));
    sram_.write(value, (std::uint64_t{addr} << 1) | 1u);
}

void TranslationTable::invalidate(std::uint64_t value) {
    WFQS_ASSERT(value < entries());
    sram_.write(value, 0);
}

std::optional<Addr> TranslationTable::peek(std::uint64_t value) const {
    WFQS_ASSERT(value < entries());
    const std::uint64_t word = sram_.peek_corrected(value);
    if ((word & 1u) == 0) return std::nullopt;
    return static_cast<Addr>(word >> 1);
}

void TranslationTable::poke(std::uint64_t value, std::optional<Addr> addr) {
    WFQS_ASSERT(value < entries());
    sram_.poke(value, addr ? (std::uint64_t{*addr} << 1) | 1u : 0);
}

void TranslationTable::clear() {
    for (std::uint64_t value = 0; value < entries(); ++value) sram_.poke(value, 0);
}

}  // namespace wfqs::storage
