#include "storage/translation_table.hpp"

#include "common/assert.hpp"
#include "common/bits.hpp"

namespace wfqs::storage {
namespace {
// The paper's translation table occupies 8 large banked memory blocks, so
// a lookup and an update (plus neighbouring pipeline traffic) coexist in
// one cycle. The tiered hot cache inherits the same banking.
constexpr unsigned kTablePorts = 4;
}  // namespace

TranslationTable::TranslationTable(const Config& config, hw::Simulation& sim)
    : config_(config),
      tiered_(config.tiered.value_or(config.tag_bits > kFlatTagBitsMax)),
      clock_(sim.clock()),
      sram_([&]() -> hw::Sram& {
          WFQS_REQUIRE(config.tag_bits >= 1 && config.tag_bits <= 32,
                       "translation table covers 1..32 tag bits");
          WFQS_REQUIRE(config.addr_bits >= 1 && config.addr_bits <= 32,
                       "list address width must be 1..32 bits");
          const bool tiered = config.tiered.value_or(config.tag_bits > kFlatTagBitsMax);
          if (!tiered) {
              WFQS_REQUIRE(config.tag_bits <= 28,
                           "flat translation table capped at 2^28 entries; "
                           "use the tiered mode for wider tag spaces");
              return sim.make_sram("translation-table",
                                   std::size_t{1} << config.tag_bits,
                                   config.addr_bits + 1,  // +1 valid bit
                                   kTablePorts);
          }
          WFQS_REQUIRE(config.hot_bits >= 1 && config.hot_bits < config.tag_bits,
                       "hot-cache index must be narrower than the tag");
          const unsigned line_bits =
              1 + config.addr_bits + (config.tag_bits - config.hot_bits);
          WFQS_REQUIRE(line_bits <= 64,
                       "hot-cache line (valid + key + address) must pack into "
                       "one 64-bit word");
          return sim.make_sram("translation-hot",
                               std::size_t{1} << config.hot_bits, line_bits,
                               kTablePorts);
      }()) {
    if (tiered_) hot_mask_ = (std::uint64_t{1} << config_.hot_bits) - 1;
}

std::optional<Addr> TranslationTable::lookup(std::uint64_t value) {
    WFQS_ASSERT(value < entries());
    ++stats_.lookups;
    if (!tiered_) {
        const std::uint64_t word = sram_.read(value);
        if ((word & 1u) == 0) return std::nullopt;
        ++stats_.hot_hits;
        return static_cast<Addr>(word >> 1);
    }
    const std::uint64_t line = sram_.read(hot_index(value));
    if ((line & 1u) != 0 && (line >> (config_.addr_bits + 1)) == hot_key(value)) {
        ++stats_.hot_hits;
        return static_cast<Addr>((line >> 1) & low_mask(config_.addr_bits));
    }
    // Hot miss: fetch from the bulk tier at DRAM latency, then install
    // the line (the fetched word arrives with the response and is
    // written in its own cycle, inside the stall we just charged).
    ++stats_.bulk_misses;
    for (unsigned c = 0; c < config_.miss_penalty_cycles; ++c) clock_.advance();
    const auto it = bulk_.find(value);
    if (it == bulk_.end()) return std::nullopt;
    sram_.write(hot_index(value), pack_hot(hot_key(value), it->second));
    return it->second;
}

void TranslationTable::set(std::uint64_t value, Addr addr) {
    WFQS_ASSERT(value < entries());
    WFQS_ASSERT(addr < (std::uint64_t{1} << config_.addr_bits));
    if (!tiered_) {
        sram_.write(value, (std::uint64_t{addr} << 1) | 1u);
        return;
    }
    bulk_[value] = addr;  // write-through, posted (DRAM write buffer)
    sram_.write(hot_index(value), pack_hot(hot_key(value), addr));
}

void TranslationTable::invalidate(std::uint64_t value) {
    WFQS_ASSERT(value < entries());
    if (!tiered_) {
        sram_.write(value, 0);
        return;
    }
    bulk_.erase(value);  // posted
    const std::uint64_t line = sram_.peek_corrected(hot_index(value));
    if ((line & 1u) != 0 && (line >> (config_.addr_bits + 1)) == hot_key(value))
        sram_.write(hot_index(value), 0);
}

std::optional<Addr> TranslationTable::peek(std::uint64_t value) const {
    WFQS_ASSERT(value < entries());
    if (!tiered_) {
        const std::uint64_t word = sram_.peek_corrected(value);
        if ((word & 1u) == 0) return std::nullopt;
        return static_cast<Addr>(word >> 1);
    }
    const auto it = bulk_.find(value);
    if (it == bulk_.end()) return std::nullopt;
    return it->second;
}

void TranslationTable::poke(std::uint64_t value, std::optional<Addr> addr) {
    WFQS_ASSERT(value < entries());
    if (!tiered_) {
        sram_.poke(value, addr ? (std::uint64_t{*addr} << 1) | 1u : 0);
        return;
    }
    if (addr)
        bulk_[value] = *addr;
    else
        bulk_.erase(value);
    // Keep the hot cache coherent with the authority it fronts.
    const std::uint64_t line = sram_.peek_corrected(hot_index(value));
    if ((line & 1u) != 0 && (line >> (config_.addr_bits + 1)) == hot_key(value))
        sram_.poke(hot_index(value), addr ? pack_hot(hot_key(value), *addr) : 0);
}

void TranslationTable::clear() {
    if (!tiered_) {
        for (std::uint64_t value = 0; value < entries(); ++value) sram_.poke(value, 0);
        return;
    }
    bulk_.clear();
    sram_.wipe();
}

void TranslationTable::for_each_valid(
    const std::function<void(std::uint64_t, Addr)>& fn) const {
    if (!tiered_) {
        sram_.for_each_nonzero_word([&](std::size_t value, std::uint64_t word) {
            if ((word & 1u) != 0) fn(value, static_cast<Addr>(word >> 1));
        });
        return;
    }
    for (const auto& [value, addr] : bulk_) fn(value, addr);
}

std::uint64_t TranslationTable::resident() const {
    if (tiered_) return bulk_.size();
    std::uint64_t n = 0;
    sram_.for_each_nonzero_word([&](std::size_t, std::uint64_t word) {
        if ((word & 1u) != 0) ++n;
    });
    return n;
}

}  // namespace wfqs::storage
