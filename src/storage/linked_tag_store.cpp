#include "storage/linked_tag_store.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/assert.hpp"
#include "common/bits.hpp"
#include "fault/errors.hpp"

namespace wfqs::storage {
namespace {

unsigned bits_for(std::uint64_t max_value) {
    unsigned bits = 1;
    while ((std::uint64_t{1} << bits) <= max_value) ++bits;
    return bits;
}

}  // namespace

LinkedTagStore::LinkedTagStore(const Config& config, hw::Simulation& sim)
    : config_(config),
      sram_([&]() -> hw::Sram& {
          WFQS_REQUIRE(config.capacity >= 2, "tag store needs at least two slots");
          WFQS_REQUIRE(config.capacity <= (std::size_t{1} << 30),
                       "tag store capped at 2^30 slots (next-pointer width)");
          WFQS_REQUIRE(config.tag_bits >= 1 && config.tag_bits <= 32,
                       "tag width must be 1..32 bits");
          WFQS_REQUIRE(config.payload_bits >= 1 && config.payload_bits <= 32,
                       "payload width must be 1..32 bits");
          const unsigned next_bits = bits_for(config.capacity);  // `capacity` encodes null
          const unsigned word = config.tag_bits + config.payload_bits + next_bits;
          if (word <= 64)
              return sim.make_sram("tag-store", config.capacity, word);
          // Wide-slot layout: the lo stripe carries the link walk.
          const unsigned lo_word = config.tag_bits + next_bits;
          WFQS_REQUIRE(lo_word <= 64,
                       "tag + next pointer must pack into the lo stripe");
          return sim.make_sram("tag-store", config.capacity, lo_word);
      }()),
      clock_(sim.clock()) {
    const unsigned next_bits = bits_for(config_.capacity);
    if (config_.tag_bits + config_.payload_bits + next_bits > 64)
        hi_sram_ = &sim.make_sram("tag-store-hi", config_.capacity,
                                  config_.payload_bits);
}

std::uint64_t LinkedTagStore::pack(const Slot& s) const {
    const unsigned next_bits = bits_for(config_.capacity);
    WFQS_ASSERT(s.entry.tag < (std::uint64_t{1} << config_.tag_bits));
    WFQS_ASSERT(config_.payload_bits == 32 ||
                s.entry.payload < (std::uint64_t{1} << config_.payload_bits));
    const std::uint64_t next_field =
        s.next == kNullAddr ? config_.capacity : static_cast<std::uint64_t>(s.next);
    WFQS_ASSERT(next_field < (std::uint64_t{1} << next_bits));
    return s.entry.tag | (std::uint64_t{s.entry.payload} << config_.tag_bits) |
           (next_field << (config_.tag_bits + config_.payload_bits));
}

LinkedTagStore::Slot LinkedTagStore::unpack(std::uint64_t word) const {
    Slot s;
    s.entry.tag = word & low_mask(config_.tag_bits);
    s.entry.payload = static_cast<std::uint32_t>((word >> config_.tag_bits) &
                                                 low_mask(config_.payload_bits));
    const std::uint64_t next_field =
        word >> (config_.tag_bits + config_.payload_bits);
    s.next = next_field == config_.capacity ? kNullAddr : static_cast<Addr>(next_field);
    return s;
}

std::uint64_t LinkedTagStore::pack_lo(const Slot& s) const {
    WFQS_ASSERT(s.entry.tag < (std::uint64_t{1} << config_.tag_bits));
    const std::uint64_t next_field =
        s.next == kNullAddr ? config_.capacity : static_cast<std::uint64_t>(s.next);
    return s.entry.tag | (next_field << config_.tag_bits);
}

LinkedTagStore::Slot LinkedTagStore::unpack_lo(std::uint64_t word) const {
    Slot s;
    s.entry.tag = word & low_mask(config_.tag_bits);
    const std::uint64_t next_field = word >> config_.tag_bits;
    s.next = next_field == config_.capacity ? kNullAddr : static_cast<Addr>(next_field);
    s.entry.payload = 0;
    return s;
}

LinkedTagStore::Slot LinkedTagStore::read_slot(Addr addr) {
    if (hi_sram_ == nullptr) return unpack(sram_.read(addr));
    Slot s = unpack_lo(sram_.read(addr));
    s.entry.payload = static_cast<std::uint32_t>(hi_sram_->read(addr));
    return s;
}

void LinkedTagStore::write_slot(Addr addr, const Slot& s) {
    if (hi_sram_ == nullptr) {
        sram_.write(addr, pack(s));
        return;
    }
    sram_.write(addr, pack_lo(s));
    hi_sram_->write(addr, s.entry.payload);
}

LinkedTagStore::Slot LinkedTagStore::peek_slot_raw(Addr addr) const {
    if (hi_sram_ == nullptr) return unpack(sram_.peek_corrected(addr));
    Slot s = unpack_lo(sram_.peek_corrected(addr));
    s.entry.payload = static_cast<std::uint32_t>(hi_sram_->peek_corrected(addr));
    return s;
}

void LinkedTagStore::poke_slot_raw(Addr addr, const Slot& s) {
    if (hi_sram_ == nullptr) {
        sram_.poke(addr, pack(s));
        return;
    }
    sram_.poke(addr, pack_lo(s));
    hi_sram_->poke(addr, s.entry.payload);
}

bool LinkedTagStore::full() const {
    return fresh_counter_ == config_.capacity && size_ == config_.capacity;
}

Addr LinkedTagStore::allocate_slot() {
    // Cycle 1 of every insert: find the next unused location (Fig. 10).
    if (fresh_counter_ < config_.capacity) {
        // Fresh region: slots are handed out by the initialisation counter
        // until it reaches capacity; no memory access needed, but the FSM
        // still spends its read cycle.
        const Addr slot = fresh_counter_++;
        clock_.advance();
        return slot;
    }
    if (size_ == config_.capacity)
        throw std::overflow_error("LinkedTagStore: tag memory full");
    // Empty list: freed slots chain through their *stale* next pointers —
    // valid because tags only ever depart from the head, so each freed
    // slot's old pointer names the slot freed right after it (the paper's
    // "the link itself is left unchanged" trick). One read pops the chain.
    if (empty_head_ == kNullAddr || empty_head_ >= config_.capacity) {
        throw fault::IntegrityError(
            fault::IntegrityKind::kFreeList,
            "empty-list head invalid with " + std::to_string(empty_list_length()) +
                " freed slot(s) outstanding");
    }
    const Addr slot = empty_head_;
    // Only the link matters here: the chain walk never touches the
    // payload stripe.
    const Slot s = hi_sram_ == nullptr ? unpack(sram_.read(slot))
                                       : unpack_lo(sram_.read(slot));
    empty_head_ = s.next;
    clock_.advance();
    return slot;
}

Addr LinkedTagStore::insert_after(Addr pred, const TagEntry& entry) {
    WFQS_REQUIRE(pred != kNullAddr && pred < config_.capacity,
                 "insert_after needs a valid predecessor (use insert_at_head)");
    const std::uint64_t t0 = clock_.now();
    const Addr slot = allocate_slot();  // cycle 1

    Slot pred_slot = read_slot(pred);  // cycle 2
    clock_.advance();
    const Addr succ = pred_slot.next;

    pred_slot.next = slot;  // cycle 3
    write_slot(pred, pred_slot);
    clock_.advance();

    write_slot(slot, Slot{entry, succ});  // cycle 4
    clock_.advance();

    ++size_;
    ++stats_.inserts;
    stats_.worst_cycles_per_op =
        std::max(stats_.worst_cycles_per_op, clock_.now() - t0);
    return slot;
}

Addr LinkedTagStore::insert_at_head(const TagEntry& entry) {
    const std::uint64_t t0 = clock_.now();
    const Addr slot = allocate_slot();  // cycle 1
    clock_.advance();                   // cycle 2: no predecessor to read

    write_slot(slot, Slot{entry, head_});  // cycle 3
    clock_.advance();

    head_ = slot;      // cycle 4: head register update
    clock_.advance();

    ++size_;
    ++stats_.inserts;
    stats_.worst_cycles_per_op =
        std::max(stats_.worst_cycles_per_op, clock_.now() - t0);
    return slot;
}

std::optional<TagEntry> LinkedTagStore::pop_head() {
    if (size_ == 0) return std::nullopt;
    const std::uint64_t t0 = clock_.now();
    const Addr old_head = head_;
    const Slot s = read_slot(old_head);  // single read cycle
    clock_.advance();
    head_ = s.next;
    // The freed slot is *not* written: its stale pointer already names the
    // slot that will depart right after it, so the chain of stale pointers
    // IS the empty list (Fig. 10 — "the link itself is left unchanged").
    // This holds because tags depart from the head in order; should a
    // caller have inserted a brand-new head in between (never happens
    // under fair queueing), the chain tail is patched with one write.
    if (empty_list_length() == 0) {
        empty_head_ = old_head;
    } else if (free_tail_stale_next_ != old_head) {
        Slot tail = peek_slot_raw(free_tail_);
        tail.next = old_head;
        write_slot(free_tail_, tail);
        clock_.advance();
    }
    free_tail_ = old_head;
    free_tail_stale_next_ = s.next;
    --size_;
    ++stats_.pops;
    stats_.worst_cycles_per_op =
        std::max(stats_.worst_cycles_per_op, clock_.now() - t0);
    return s.entry;
}

LinkedTagStore::CombinedResult LinkedTagStore::insert_and_pop_head(
    Addr pred, const TagEntry& entry) {
    WFQS_REQUIRE(size_ > 0, "insert_and_pop_head needs a non-empty list");
    const std::uint64_t t0 = clock_.now();

    const Addr slot = head_;               // reuse the departing slot
    const Slot popped = read_slot(slot);   // cycle 1
    clock_.advance();
    const Addr new_head = popped.next;

    if (pred == kNullAddr || pred == slot) {
        // The new tag follows the departing minimum: it becomes the head,
        // occupying the same physical slot.
        clock_.advance();  // cycle 2 (no predecessor read)
        clock_.advance();  // cycle 3 (no predecessor write)
        write_slot(slot, Slot{entry, new_head});  // cycle 4
        clock_.advance();
        // head_ already equals slot
    } else {
        WFQS_REQUIRE(pred < config_.capacity, "bad predecessor address");
        Slot pred_slot = read_slot(pred);  // cycle 2
        clock_.advance();
        const Addr succ = pred_slot.next;
        pred_slot.next = slot;  // cycle 3
        write_slot(pred, pred_slot);
        clock_.advance();
        write_slot(slot, Slot{entry, succ});  // cycle 4
        clock_.advance();
        head_ = new_head;
    }

    ++stats_.combined_ops;
    stats_.worst_cycles_per_op =
        std::max(stats_.worst_cycles_per_op, clock_.now() - t0);
    return CombinedResult{popped.entry, slot};
}

std::optional<TagEntry> LinkedTagStore::peek_head() const {
    if (size_ == 0) return std::nullopt;
    return peek_slot_raw(head_).entry;
}

std::optional<std::uint64_t> LinkedTagStore::peek_second_tag() const {
    if (size_ < 2) return std::nullopt;
    const Slot head = peek_slot_raw(head_);
    if (head.next == kNullAddr || head.next >= config_.capacity) {
        throw fault::IntegrityError(
            fault::IntegrityKind::kBrokenLink,
            "head slot's next pointer is invalid with " + std::to_string(size_) +
                " entries stored");
    }
    return peek_slot_raw(head.next).entry.tag;
}

std::vector<TagEntry> LinkedTagStore::snapshot() const {
    std::vector<TagEntry> out;
    out.reserve(size_);
    Addr a = head_;
    for (std::size_t i = 0; i < size_; ++i) {
        if (a == kNullAddr || a >= config_.capacity) {
            throw fault::IntegrityError(
                fault::IntegrityKind::kBrokenLink,
                "list chain breaks after " + std::to_string(i) + " of " +
                    std::to_string(size_) + " entries");
        }
        const Slot s = peek_slot_raw(a);
        out.push_back(s.entry);
        a = s.next;
    }
    return out;
}

LinkedTagStore::SlotView LinkedTagStore::peek_slot(Addr addr) const {
    const Slot s = peek_slot_raw(addr);
    return SlotView{s.entry, s.next};
}

void LinkedTagStore::poke_slot(Addr addr, const SlotView& slot) {
    poke_slot_raw(addr, Slot{slot.entry, slot.next});
}

void LinkedTagStore::relink_free_list(const std::vector<Addr>& free_slots) {
    WFQS_REQUIRE(free_slots.size() == empty_list_length(),
                 "relink_free_list must cover every freed slot");
    if (free_slots.empty()) {
        empty_head_ = kNullAddr;
        free_tail_ = kNullAddr;
        free_tail_stale_next_ = kNullAddr;
        return;
    }
    for (std::size_t i = 0; i < free_slots.size(); ++i) {
        SlotView s = peek_slot(free_slots[i]);
        s.next = i + 1 < free_slots.size() ? free_slots[i + 1] : kNullAddr;
        poke_slot(free_slots[i], s);
    }
    empty_head_ = free_slots.front();
    free_tail_ = free_slots.back();
    free_tail_stale_next_ = kNullAddr;
}

void LinkedTagStore::reset() {
    head_ = kNullAddr;
    empty_head_ = kNullAddr;
    free_tail_ = kNullAddr;
    free_tail_stale_next_ = kNullAddr;
    fresh_counter_ = 0;
    size_ = 0;
}

std::size_t LinkedTagStore::empty_list_length() const {
    // Freed slots = everything handed out by the counter that is not live.
    return static_cast<std::size_t>(fresh_counter_) - size_;
}

}  // namespace wfqs::storage
