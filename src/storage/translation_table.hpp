// Address translation table (§III-D): one entry per representable tag
// value, mapping the value to the linked-list address of the most
// recently inserted tag of that value.
//
// It is the bridge that lets the search structure (tree) and the storage
// structure (linked list) scale independently: the tree's granularity
// fixes the table size (paper eq. for T = 2^(w·l) entries) while the list
// capacity is bounded only by the external SRAM. Duplicate tag values are
// handled by always pointing at the newest entry (Fig. 11), which keeps
// every tree hit valid and gives FIFO order within a value.
#pragma once

#include <cstdint>
#include <optional>

#include "hw/simulation.hpp"
#include "storage/linked_tag_store.hpp"

namespace wfqs::storage {

class TranslationTable {
public:
    struct Config {
        unsigned tag_bits = 12;   ///< table has 2^tag_bits entries
        unsigned addr_bits = 20;  ///< width of a linked-list address
    };

    TranslationTable(const Config& config, hw::Simulation& sim);

    /// Linked-list address of the newest entry with this tag value, if
    /// one is recorded. One SRAM read, charged to the current cycle (the
    /// table is banked in the paper's layout — 8 memory blocks).
    std::optional<Addr> lookup(std::uint64_t value);

    /// Record `addr` as the newest entry for `value`. One SRAM write.
    void set(std::uint64_t value, Addr addr);

    /// Drop the record for `value` (used when the last duplicate departs
    /// or a sector is recycled). One SRAM write.
    void invalidate(std::uint64_t value);

    // -- integrity surface (audit/repair/tests; no ports, no cycles) ------

    /// ECC-corrected view of one entry; nullopt when the valid bit is
    /// clear. Never charges a cycle — this is the auditor's read.
    std::optional<Addr> peek(std::uint64_t value) const;
    /// Maintenance write: set (or clear, with nullopt) an entry,
    /// re-encoding its check bits.
    void poke(std::uint64_t value, std::optional<Addr> addr);
    /// Clear every entry (rebuild path; maintenance writes, no cycles).
    void clear();

    std::uint64_t entries() const { return std::uint64_t{1} << config_.tag_bits; }
    const hw::Sram& memory() const { return sram_; }
    hw::Sram& memory() { return sram_; }  ///< scrubber/corruption-test access

private:
    Config config_;
    hw::Sram& sram_;
};

}  // namespace wfqs::storage
