// Address translation table (§III-D): maps a tag value to the
// linked-list address of the most recently inserted tag of that value.
//
// It is the bridge that lets the search structure (tree) and the storage
// structure (linked list) scale independently: the tree's granularity
// fixes the table size (paper eq. for T = 2^(w·l) entries) while the list
// capacity is bounded only by the external SRAM. Duplicate tag values are
// handled by always pointing at the newest entry (Fig. 11), which keeps
// every tree hit valid and gives FIFO order within a value.
//
// Two backing models:
//
//   * Flat (the paper's layout, default up to kFlatTagBitsMax tag bits):
//     one SRAM entry per representable value — every lookup is one
//     on-chip read.
//   * Tiered (default above kFlatTagBitsMax): 2^32 representable values
//     no longer imply a 2^32-entry SRAM. The authority is a bulk tier at
//     DRAM latency (modeled as an associative store plus a fixed
//     miss-penalty clock advance); in front of it sits a direct-mapped
//     on-chip hot-head cache of 2^hot_bits lines, each holding
//     valid | key-tag | address. Lookups that hit the cache cost the
//     same single on-chip read as the flat table — and the head region
//     the sorter hammers (§III-B reads the *minimum* tag's entry) is
//     exactly the region that stays hot. Misses advance the clock by
//     miss_penalty_cycles and install the fetched line; writes are
//     write-through (posted, no stall — a DRAM write buffer).
//
// The miss penalty flows into the sorter's per-op cycle accounting
// automatically: TagSorter bills each op the clock delta across its
// body, and the differ's cycle-closure check keeps the books honest.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>

#include "hw/simulation.hpp"
#include "storage/linked_tag_store.hpp"

namespace wfqs::storage {

struct TranslationStats {
    std::uint64_t lookups = 0;
    std::uint64_t hot_hits = 0;      ///< served by the on-chip cache
    std::uint64_t bulk_misses = 0;   ///< paid the DRAM-latency penalty
};

class TranslationTable {
public:
    /// Widest tag space served by a flat one-entry-per-value SRAM when
    /// the config does not choose a mode explicitly.
    static constexpr unsigned kFlatTagBitsMax = 20;

    struct Config {
        unsigned tag_bits = 12;   ///< table covers 2^tag_bits values
        unsigned addr_bits = 20;  ///< width of a linked-list address
        /// Backing model: unset = flat up to kFlatTagBitsMax tag bits,
        /// tiered above. Set to force either mode (flat stays capped at
        /// 2^28 entries).
        std::optional<bool> tiered{};
        /// Tiered mode: direct-mapped hot-cache lines = 2^hot_bits.
        unsigned hot_bits = 14;
        /// Tiered mode: clock cycles charged per bulk-tier fetch.
        unsigned miss_penalty_cycles = 20;
    };

    TranslationTable(const Config& config, hw::Simulation& sim);

    bool tiered() const { return tiered_; }

    /// Linked-list address of the newest entry with this tag value, if
    /// one is recorded. Flat (and tiered hot hit): one SRAM read, charged
    /// to the current cycle. Tiered miss: advances the clock by the miss
    /// penalty, then installs the line.
    std::optional<Addr> lookup(std::uint64_t value);

    /// Record `addr` as the newest entry for `value`. One SRAM write
    /// (tiered: write-through to the bulk tier, posted).
    void set(std::uint64_t value, Addr addr);

    /// Drop the record for `value` (used when the last duplicate departs
    /// or a sector is recycled). One SRAM write when the hot cache holds
    /// the line; the bulk erase is posted.
    void invalidate(std::uint64_t value);

    // -- integrity surface (audit/repair/tests; no ports, no cycles) ------

    /// ECC-corrected view of one entry; nullopt when the valid bit is
    /// clear. Never charges a cycle — this is the auditor's read. Tiered
    /// mode consults the authoritative bulk tier.
    std::optional<Addr> peek(std::uint64_t value) const;
    /// Maintenance write: set (or clear, with nullopt) an entry,
    /// re-encoding its check bits (tiered: bulk tier plus any matching
    /// hot line, so the cache never contradicts the authority).
    void poke(std::uint64_t value, std::optional<Addr> addr);
    /// Clear every entry (rebuild path; maintenance writes, no cycles).
    void clear();

    /// Invoke `fn(value, addr)` for every valid entry. Flat tables scan
    /// only nonzero SRAM words; tiered tables walk the bulk tier — both
    /// proportional to live entries, not 2^tag_bits. Iteration order is
    /// unspecified.
    void for_each_valid(
        const std::function<void(std::uint64_t, Addr)>& fn) const;

    /// Live (valid) entries — tiered mode tracks this exactly; flat mode
    /// counts on demand.
    std::uint64_t resident() const;

    std::uint64_t entries() const { return std::uint64_t{1} << config_.tag_bits; }
    const Config& config() const { return config_; }
    const TranslationStats& stats() const { return stats_; }
    /// Flat mode: the table SRAM. Tiered mode: the hot-cache SRAM (the
    /// only on-chip memory of the table — the bulk tier is off-chip).
    const hw::Sram& memory() const { return sram_; }
    hw::Sram& memory() { return sram_; }  ///< scrubber/corruption-test access

private:
    std::uint64_t hot_index(std::uint64_t value) const { return value & hot_mask_; }
    std::uint64_t hot_key(std::uint64_t value) const { return value >> config_.hot_bits; }
    std::uint64_t pack_hot(std::uint64_t key, Addr addr) const {
        return (key << (config_.addr_bits + 1)) | (std::uint64_t{addr} << 1) | 1u;
    }

    Config config_;
    bool tiered_ = false;
    hw::Clock& clock_;
    hw::Sram& sram_;
    std::uint64_t hot_mask_ = 0;  ///< tiered: 2^hot_bits - 1
    /// Tiered: the authoritative bulk tier (off-chip DRAM model).
    std::unordered_map<std::uint64_t, Addr> bulk_;
    mutable TranslationStats stats_;
};

}  // namespace wfqs::storage
