// Tag storage memory (§III-C): a sorted singly linked list kept in
// (external) SRAM, with an interleaved empty list of freed slots and a
// fresh-allocation counter (Fig. 10).
//
// The list itself never compares tag values — the insertion point always
// comes from the tree + translation table — which is what lets the sorter
// run a wrapped (mod-2^W) tag ordering without the memory caring.
//
// Timing (paper Fig. 9): entering a new tag costs exactly four clock
// cycles — two reads and two writes to the single-port entry SRAM:
//   1. read a free slot (empty-list head, or allocate fresh),
//   2. read the predecessor link,
//   3. write the predecessor back with its pointer redirected,
//   4. write the new link.
// A simultaneous insert + remove-smallest also completes in the same four
// cycles by reusing the departing head slot for the incoming tag instead
// of touching the empty list (§III-C).
//
// Wide-slot mode: when tag + payload + next no longer pack into one
// 64-bit word (32-bit tags with 24-bit payloads need 69+ bits), the
// entry is striped across two parallel SRAMs — "tag-store" holds
// tag | next (the link walk's critical path), "tag-store-hi" holds the
// payload. Both are accessed in the same cycle (parallel banks of one
// logical memory), so the 4-cycle FSM and every cycle count are
// unchanged; narrow configurations keep the single-SRAM layout
// bit-identically.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "hw/simulation.hpp"

namespace wfqs::storage {

/// Address of a list slot. kNullAddr is the null pointer.
using Addr = std::uint32_t;
inline constexpr Addr kNullAddr = ~Addr{0};

struct TagEntry {
    std::uint64_t tag = 0;
    std::uint32_t payload = 0;  ///< packet-buffer pointer travelling with the tag
};

struct StoreStats {
    std::uint64_t inserts = 0;
    std::uint64_t pops = 0;
    std::uint64_t combined_ops = 0;
    std::uint64_t worst_cycles_per_op = 0;
};

class LinkedTagStore {
public:
    struct Config {
        std::size_t capacity = 4096;  ///< number of list slots
        unsigned tag_bits = 12;
        unsigned payload_bits = 24;
    };

    LinkedTagStore(const Config& config, hw::Simulation& sim);

    /// Insert `entry` directly after the link at `pred`; returns the new
    /// slot's address. Exactly 4 cycles. Throws std::overflow_error when
    /// the memory is full.
    Addr insert_after(Addr pred, const TagEntry& entry);

    /// Insert `entry` as the new list head (no predecessor). 4 cycles.
    Addr insert_at_head(const TagEntry& entry);

    /// Remove and return the smallest (head) entry; its slot joins the
    /// empty list. 2 cycles (1 read + 1 write). Returns nullopt when empty.
    std::optional<TagEntry> pop_head();

    /// §III-C simultaneous case: remove the head and insert `entry` after
    /// `pred` (kNullAddr, or the head's own address, makes the new entry
    /// the head) — the departing slot is reused, 4 cycles total.
    /// Precondition: list non-empty.
    struct CombinedResult {
        TagEntry popped;
        Addr inserted_at;
    };
    CombinedResult insert_and_pop_head(Addr pred, const TagEntry& entry);

    /// The smallest tag, readable at any time from the head register
    /// ("the smallest tag value ... is always known") — no cycles.
    std::optional<TagEntry> peek_head() const;
    Addr head_addr() const { return head_; }

    /// The tag of the entry after the head, if any (one register-speed
    /// comparison in hardware; here a peek). Used by the sorter to detect
    /// that the last duplicate of a value is departing.
    std::optional<std::uint64_t> peek_second_tag() const;

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    bool full() const;
    std::size_t capacity() const { return config_.capacity; }

    /// Walk the sorted list (tests/analysis only: peeks, no cycles).
    /// Throws fault::IntegrityError on a broken chain.
    std::vector<TagEntry> snapshot() const;
    /// Freed-slot count (fresh allocations minus live entries).
    std::size_t empty_list_length() const;

    // -- integrity surface (audit/repair/tests; no ports, no cycles) ------

    /// One stored slot as the auditor sees it: ECC-corrected view of the
    /// packed word. `next == kNullAddr` is the unpacked null.
    struct SlotView {
        TagEntry entry;
        Addr next = kNullAddr;
    };
    SlotView peek_slot(Addr addr) const;
    /// Maintenance write of a full slot (repairs; re-encodes check bits).
    void poke_slot(Addr addr, const SlotView& slot);

    Addr empty_head() const { return empty_head_; }
    Addr free_tail() const { return free_tail_; }
    std::uint32_t fresh_count() const { return fresh_counter_; }

    /// Rewrite the empty list as the given chain of slots (repair path:
    /// the stale-pointer trick cannot survive arbitrary corruption, so the
    /// scrubber materialises an explicit chain with poke writes).
    void relink_free_list(const std::vector<Addr>& free_slots);

    /// Forget all contents and bookkeeping (rebuild path — the sorter
    /// drains what it can, resets, and re-inserts). Stats are preserved;
    /// the backing SRAM words are left as-is and re-used via the fresh
    /// counter.
    void reset();

    const StoreStats& stats() const { return stats_; }
    const hw::Sram& memory() const { return sram_; }
    hw::Sram& memory() { return sram_; }  ///< scrubber/corruption-test access
    /// Wide-slot mode's payload stripe; nullptr in the single-word layout.
    hw::Sram* hi_memory() { return hi_sram_; }
    const hw::Sram* hi_memory() const { return hi_sram_; }
    bool wide() const { return hi_sram_ != nullptr; }

private:
    struct Slot {
        TagEntry entry;
        Addr next;
    };
    std::uint64_t pack(const Slot& s) const;
    Slot unpack(std::uint64_t word) const;
    std::uint64_t pack_lo(const Slot& s) const;  ///< wide mode: tag | next
    Slot unpack_lo(std::uint64_t word) const;    ///< wide mode: payload = 0
    /// Datapath slot access: one cycle's worth of (parallel) SRAM
    /// traffic — a single access in narrow mode, one per stripe in wide.
    Slot read_slot(Addr addr);
    void write_slot(Addr addr, const Slot& s);
    /// Maintenance views (no ports, no counters, ECC-corrected).
    Slot peek_slot_raw(Addr addr) const;
    void poke_slot_raw(Addr addr, const Slot& s);
    Addr allocate_slot();  ///< cycle 1 of an insert

    Config config_;
    hw::Sram& sram_;
    hw::Sram* hi_sram_ = nullptr;
    hw::Clock& clock_;
    Addr head_ = kNullAddr;        ///< head of the sorted list (smallest tag)
    Addr empty_head_ = kNullAddr;  ///< head of the empty (free) list
    Addr free_tail_ = kNullAddr;   ///< most recently freed slot
    Addr free_tail_stale_next_ = kNullAddr;  ///< that slot's stale pointer
    std::uint32_t fresh_counter_ = 0;
    std::size_t size_ = 0;
    StoreStats stats_;
};

}  // namespace wfqs::storage
