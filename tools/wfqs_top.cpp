// wfqs_top: terminal dashboard for the host-pipeline telemetry.
//
// Two modes, one binary:
//
//   wfqs_top STATUS_FILE [--interval MS] [--once]
//       Attach to a live bench. A profiler-attached bench run with
//       `--live STATUS_FILE` rewrites the file (tmp+rename) every
//       sampler tick in the `# wfqs-live v1` format; wfqs_top polls it
//       and redraws a per-stage table (items, stalls, busy fraction with
//       a bar) plus ASCII sparklines of the most recent timeline
//       windows. --once renders a single frame without touching the
//       terminal modes — that is what tests and scripts use.
//
//   wfqs_top --replay DUMP.ops
//       Render a flight-recorder dump (from fault_soak --flight,
//       wfqs_fuzz --flight, or a crash hook) as an annotated timeline:
//       the dump's reason header, an event-kind census, collapsed runs
//       of replayable ops, and every fault/scrub/stall/divergence
//       annotation in ring order. The same file replays through
//       `wfqs_fuzz --replay` — this view is the human half.
//
// Exit code: 0 = rendered, 1 = stale/never-appearing live file,
// 2 = usage or parse error.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/table.hpp"

namespace {

using wfqs::TextTable;

// ------------------------------------------------------------- live mode

struct StageRow {
    std::string name;
    unsigned threads = 0;
    std::uint64_t items = 0;
    std::uint64_t stalls = 0;
    std::uint64_t stall_ns = 0;
    std::uint64_t busy_ns = 0;
    double busy = 0.0;
};

/// Per-bank row of a sharded/reshard bench (`bank <i> state <s> occ <n>
/// wait <cycles> ops <n>` live lines).
struct BankRow {
    unsigned index = 0;
    std::string state;
    std::uint64_t occ = 0;
    std::uint64_t wait = 0;
    std::uint64_t ops = 0;
};

struct LiveStatus {
    double elapsed_s = 0.0;
    double window_t = 0.0;
    std::vector<StageRow> stages;
    std::vector<BankRow> banks;
    std::vector<std::pair<std::string, std::vector<double>>> series;
};

std::optional<LiveStatus> parse_live(const std::string& path) {
    std::ifstream in(path);
    if (!in) return std::nullopt;
    std::string line;
    if (!std::getline(in, line) || line != "# wfqs-live v1") return std::nullopt;
    LiveStatus st;
    while (std::getline(in, line)) {
        std::istringstream ls(line);
        std::string key;
        if (!(ls >> key)) continue;
        if (key == "elapsed_s") {
            ls >> st.elapsed_s;
        } else if (key == "window_t") {
            ls >> st.window_t;
        } else if (key == "stage") {
            StageRow row;
            std::string k;
            ls >> row.name;
            while (ls >> k) {
                if (k == "threads") ls >> row.threads;
                else if (k == "items") ls >> row.items;
                else if (k == "stalls") ls >> row.stalls;
                else if (k == "stall_ns") ls >> row.stall_ns;
                else if (k == "busy_ns") ls >> row.busy_ns;
                else if (k == "busy") ls >> row.busy;
            }
            st.stages.push_back(std::move(row));
        } else if (key == "bank") {
            BankRow row;
            std::string k;
            ls >> row.index;
            while (ls >> k) {
                if (k == "state") ls >> row.state;
                else if (k == "occ") ls >> row.occ;
                else if (k == "wait") ls >> row.wait;
                else if (k == "ops") ls >> row.ops;
            }
            st.banks.push_back(std::move(row));
        } else if (key == "series") {
            std::string name;
            ls >> name;
            std::vector<double> v;
            double x;
            while (ls >> x) v.push_back(x);
            st.series.emplace_back(std::move(name), std::move(v));
        }
    }
    return st;
}

/// Scale a window tail onto ' .:-=+*#%@' (min..max of the tail itself).
std::string sparkline(const std::vector<double>& v) {
    static const char kRamp[] = " .:-=+*#%@";
    constexpr std::size_t kLevels = sizeof(kRamp) - 2;  // index 0..9
    if (v.empty()) return "";
    double lo = v[0], hi = v[0];
    for (const double x : v) {
        lo = x < lo ? x : lo;
        hi = x > hi ? x : hi;
    }
    std::string out;
    out.reserve(v.size());
    for (const double x : v) {
        const double frac = hi > lo ? (x - lo) / (hi - lo) : (hi > 0 ? 1.0 : 0.0);
        out += kRamp[static_cast<std::size_t>(frac * kLevels + 0.5)];
    }
    return out;
}

std::string busy_bar(double frac, std::size_t width = 20) {
    if (frac < 0) frac = 0;
    if (frac > 1) frac = 1;
    const std::size_t fill = static_cast<std::size_t>(frac * width + 0.5);
    return std::string(fill, '#') + std::string(width - fill, '-');
}

void render_live(const LiveStatus& st, const std::string& path, bool stale) {
    std::printf("wfqs_top — %s  (elapsed %.2fs%s)\n", path.c_str(), st.elapsed_s,
                stale ? ", STALE" : "");
    TextTable t({"stage", "thr", "items", "stalls", "stall_ms", "busy", ""});
    const StageRow* hot = nullptr;
    for (const StageRow& s : st.stages) {
        if (s.items == 0 && s.threads == 0 && s.busy_ns == 0) continue;
        if (hot == nullptr || s.busy > hot->busy) hot = &s;
        t.add_row({s.name, TextTable::num(static_cast<std::uint64_t>(s.threads)),
                   TextTable::num(s.items), TextTable::num(s.stalls),
                   TextTable::num(static_cast<double>(s.stall_ns) / 1e6, 2),
                   TextTable::num(s.busy, 3), busy_bar(s.busy)});
    }
    std::printf("%s", t.render().c_str());
    if (hot != nullptr)
        std::printf("bottleneck: %s (stages wait on the busiest one)\n",
                    hot->name.c_str());
    if (!st.banks.empty()) {
        std::uint64_t max_occ = 1;
        for (const BankRow& b : st.banks)
            max_occ = b.occ > max_occ ? b.occ : max_occ;
        std::printf("\nbanks:\n");
        TextTable bt({"bank", "state", "occ", "wait_cyc", "ops", ""});
        for (const BankRow& b : st.banks)
            bt.add_row({TextTable::num(static_cast<std::uint64_t>(b.index)),
                        b.state, TextTable::num(b.occ), TextTable::num(b.wait),
                        TextTable::num(b.ops),
                        busy_bar(static_cast<double>(b.occ) /
                                 static_cast<double>(max_occ))});
        std::printf("%s", bt.render().c_str());
    }
    if (!st.series.empty()) {
        std::printf("\nlast windows (through t=%.2fs):\n", st.window_t);
        std::size_t width = 0;
        for (const auto& [name, v] : st.series)
            width = name.size() > width ? name.size() : width;
        for (const auto& [name, v] : st.series)
            std::printf("  %-*s |%s|\n", static_cast<int>(width), name.c_str(),
                        sparkline(v).c_str());
    }
}

int run_live(const std::string& path, int interval_ms, bool once) {
    double last_elapsed = -1.0;
    int unchanged = 0;
    for (int frame = 0;; ++frame) {
        const auto st = parse_live(path);
        if (!st) {
            if (once) {
                std::fprintf(stderr, "wfqs_top: cannot read live status '%s'\n",
                             path.c_str());
                return 1;
            }
            std::printf("\033[2J\033[Hwfqs_top — waiting for %s ...\n",
                        path.c_str());
        } else {
            unchanged = st->elapsed_s == last_elapsed ? unchanged + 1 : 0;
            last_elapsed = st->elapsed_s;
            if (!once) std::printf("\033[2J\033[H");
            render_live(*st, path, unchanged >= 4);
            if (once) return 0;
        }
        std::fflush(stdout);
        std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
}

// ----------------------------------------------------------- replay mode

struct DumpEvent {
    std::uint64_t seq = 0;
    std::string kind;
    double t = 0.0;
    std::int64_t a = 0;
    std::int64_t b = 0;
};

bool is_op_kind(const std::string& k) {
    return k == "insert" || k == "pop" || k == "combined";
}

const char* scrub_action_name(std::int64_t a) {
    switch (a) {
        case 0: return "clean";
        case 1: return "repaired";
        case 2: return "rebuilt";
    }
    return "?";
}

const char* stall_stage_name(std::int64_t a) {
    switch (a) {
        case 0: return "gen";
        case 1: return "merge";
        case 2: return "sched";
        case 3: return "egress";
    }
    return "?";
}

const char* reshard_event_name(std::int64_t a) {
    switch (a) {
        case 0: return "add";
        case 1: return "fence";
        case 2: return "detach";
        case 3: return "rebalance";
    }
    return "?";
}

int run_replay(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "wfqs_top: cannot read dump '%s'\n", path.c_str());
        return 2;
    }
    std::string line;
    if (!std::getline(in, line) || line.rfind("# wfqs-ops", 0) != 0) {
        std::fprintf(stderr, "wfqs_top: '%s' is not a wfqs-ops dump\n",
                     path.c_str());
        return 2;
    }
    std::vector<std::string> reason;
    std::vector<DumpEvent> events;
    std::size_t op_lines = 0;
    while (std::getline(in, line)) {
        DumpEvent ev;
        char kind[32] = {0};
        if (std::sscanf(line.c_str(), "# ev %llu %31s t=%lf a=%lld b=%lld",
                        reinterpret_cast<unsigned long long*>(&ev.seq), kind,
                        &ev.t, reinterpret_cast<long long*>(&ev.a),
                        reinterpret_cast<long long*>(&ev.b)) == 5) {
            ev.kind = kind;
            events.push_back(std::move(ev));
        } else if (line.rfind("# ", 0) == 0) {
            reason.push_back(line.substr(2));
        } else if (!line.empty() && line[0] != '#') {
            ++op_lines;
        }
    }

    std::printf("wfqs_top — flight dump %s\n", path.c_str());
    for (const std::string& r : reason) std::printf("  %s\n", r.c_str());

    // Event-kind census.
    std::vector<std::pair<std::string, std::uint64_t>> census;
    for (const DumpEvent& ev : events) {
        bool found = false;
        for (auto& [k, n] : census)
            if (k == ev.kind) {
                ++n;
                found = true;
            }
        if (!found) census.emplace_back(ev.kind, 1);
    }
    std::printf("\n%zu events in ring (%zu replayable op lines):", events.size(),
                op_lines);
    for (const auto& [k, n] : census)
        std::printf(" %s=%llu", k.c_str(), static_cast<unsigned long long>(n));
    std::printf("\n\ntimeline (op runs collapsed):\n");

    // Collapse op runs; print annotations individually.
    constexpr std::size_t kMaxAnnotations = 64;
    std::size_t printed = 0, suppressed = 0;
    std::size_t i = 0;
    while (i < events.size()) {
        if (is_op_kind(events[i].kind)) {
            std::uint64_t ni = 0, np = 0, nc = 0;
            const double t_from = events[i].t;
            double t_to = t_from;
            while (i < events.size() && is_op_kind(events[i].kind)) {
                t_to = events[i].t;
                if (events[i].kind == "insert") ++ni;
                else if (events[i].kind == "pop") ++np;
                else ++nc;
                ++i;
            }
            std::printf("  t=[%g..%g] %llu ops (%llu i / %llu p / %llu c)\n",
                        t_from, t_to,
                        static_cast<unsigned long long>(ni + np + nc),
                        static_cast<unsigned long long>(ni),
                        static_cast<unsigned long long>(np),
                        static_cast<unsigned long long>(nc));
            continue;
        }
        const DumpEvent& ev = events[i++];
        if (printed >= kMaxAnnotations) {
            ++suppressed;
            continue;
        }
        ++printed;
        if (ev.kind == "scrub") {
            std::printf("  t=%g SCRUB %s, %lld entries lost\n", ev.t,
                        scrub_action_name(ev.a), static_cast<long long>(ev.b));
        } else if (ev.kind == "stall") {
            std::printf("  t=%g STALL stage=%s\n", ev.t, stall_stage_name(ev.b));
        } else if (ev.kind == "reshard") {
            std::printf("  t=%g RESHARD %s bank=%lld\n", ev.t,
                        reshard_event_name(ev.a), static_cast<long long>(ev.b));
        } else {
            std::printf("  t=%g %s a=%lld b=%lld\n", ev.t, ev.kind.c_str(),
                        static_cast<long long>(ev.a),
                        static_cast<long long>(ev.b));
        }
    }
    if (suppressed > 0)
        std::printf("  (... %zu more annotations)\n", suppressed);
    std::printf("\nreplay the op tail: wfqs_fuzz --replay %s\n", path.c_str());
    return 0;
}

[[noreturn]] void usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s STATUS_FILE [--interval MS] [--once]\n"
                 "       %s --replay DUMP.ops\n",
                 argv0, argv0);
    std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
    std::string path, replay;
    int interval_ms = 500;
    bool once = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc) usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--replay") replay = value();
        else if (arg == "--interval") interval_ms = std::atoi(value().c_str());
        else if (arg == "--once") once = true;
        else if (!arg.empty() && arg[0] == '-') usage(argv[0]);
        else path = arg;
    }
    if (!replay.empty()) return run_replay(replay);
    if (path.empty() || interval_ms <= 0) usage(argv[0]);
    return run_live(path, interval_ms, once);
}
