#!/usr/bin/env python3
"""Perf smoke gate: compare a fresh bench JSON against the committed artifact.

Usage:
  perf_smoke.py <committed.json> <fresh.json> [--tolerance FRAC]
  perf_smoke.py --policy <committed_policy.json> <fresh_policy.json>
                [--tolerance FRAC]
  perf_smoke.py --host-overhead <off.json[,off2,...]> <on.json[,on2,...]>
                [--overhead-tolerance FRAC]

Default mode checks (all on *modeled*, machine-independent metrics):
  1. every committed gauge whose name contains "cycles_per_op" must not
     regress: fresh <= committed * (1 + tolerance)  [lower is better];
  2. the "hw.cycles" counter, when present, must match exactly — the
     cycle-accurate simulation is deterministic at a fixed seed, so any
     drift means the modeled circuit changed without the artifact being
     regenerated;
  3. the "shard_scaling.n1_identical_to_single" gauge, when present, must
     be 1.0 in the fresh run (the bench also exits non-zero on its own);
  4. the "host.pipeline.identical_to_sequential" gauge, when present,
     must be 1.0 — the multi-threaded host pipeline reproduced the
     sequential SimDriver bit for bit. Together with check 2 this gates
     that running a bench with --threads (including --threads 1, the
     delegating path) keeps "hw.cycles" exactly unchanged: the pipeline
     never touches the bench-registered simulation;
  5. the "host.ffs.speedup_vs_model" gauge, when present, must be at
     least --ffs-speedup-floor (default 3.0). Both backends are measured
     in the same process on the same stream, so the ratio is robust to
     machine speed even though each side is wall-clock;
  6. the "host.pipeline.speedup_vs_sequential" gauge must be at least
     --pipeline-speedup-floor (default 2.5) — but only when the fresh run
     used >= 8 pipeline threads AND the recording machine had >= 8
     hardware threads ("host.pipeline.threads" / "host.hardware_concurrency").
     A laptop or a 1-core CI runner cannot show a parallel speedup; the
     bit-identity gate (check 4) still applies there.

Optional per-backend absolute floors (machine-specific, off by default):
--model-floor / --ffs-floor gate host.model.ops_per_sec and
host.ffs.ops_per_sec in the fresh run. Use these only where the runner
hardware is known (e.g. a dedicated perf box).

It also prints an *informational* per-stage stall breakdown from the
fresh run's host.pipeline.*_stall_ns gauges (and the host_profile
bottleneck when the run was made with --timeseries): wall-clock numbers
never gate in this mode, but the breakdown is what explains a pipeline
speedup — or the lack of one — at a glance.

--policy mode gates bench/policy_comparison artifacts (modeled,
seed-deterministic metrics only):
  1. every fresh row with policy.<row>.exact == 1 must report exactly
     zero inversions — an exact PIFO that inverts is a scheduler bug,
     not a perf regression, and no tolerance applies;
  2. every approximation row (exact == 0) must stay inside the committed
     inversion-rate envelope: fresh <= committed * (1 + tolerance);
  3. an approximation whose committed rate is non-zero must stay
     non-zero — a sudden 0 means the inversion meter stopped observing,
     not that SP-PIFO/RIFO became exact;
  4. every committed policy.* row must still be present in the fresh run.

--host-overhead mode gates the cost of telemetry itself: both file lists
come from the *same machine and bench*, the first run plain, the second
with --timeseries (profiler + sampler attached). Comma-separated lists
are best-of-N: the best ops/sec on each side is compared, and the run
fails if telemetry costs more than --overhead-tolerance (default 3%) of
host.ops_per_sec.

host.* *wall-clock* gauges (elapsed_ms, ops_per_sec) vary machine to
machine and are skipped by the default mode's name scan; the identity
gate above is the one host.* value that is machine-independent. Exits 0
when every check passes, 1 otherwise.
"""

import argparse
import json
import sys

STAGES = ("gen", "merge", "sched", "egress")


def load_doc(path):
    with open(path) as f:
        return json.load(f)


def flat_metrics(doc):
    metrics = doc.get("metrics", {})
    flat = {}
    flat.update(metrics.get("counters", {}))
    flat.update(metrics.get("gauges", {}))
    return flat


def stall_breakdown(committed, fresh, fresh_doc):
    """Informational: where did the pipelined run wait, and did it move?"""
    rows = []
    for stage in STAGES:
        name = f"host.pipeline.{stage}_stall_ns"
        if name not in fresh:
            continue
        rows.append((stage, committed.get(name), fresh[name]))
    if not rows:
        return
    print("host pipeline stall breakdown (informational):")
    for stage, base, now in rows:
        if base is not None:
            print(f"  {stage:<6}: {base / 1e6:9.2f} ms -> {now / 1e6:9.2f} ms")
        else:
            print(f"  {stage:<6}: {now / 1e6:9.2f} ms")
    waiter = max(rows, key=lambda r: r[2])
    print(f"  dominant waiter: {waiter[0]} "
          "(the stage that spends longest blocked on its neighbours)")
    profile = fresh_doc.get("host_profile")
    if profile and "bottleneck" in profile:
        print(f"  profiler bottleneck: {profile['bottleneck']} "
              "(highest busy fraction; the stage the others wait for)")


def best_ops_per_sec(paths):
    """Best-of-N host.ops_per_sec over a comma-separated file list."""
    best = None
    for path in paths.split(","):
        metrics = flat_metrics(load_doc(path))
        ops = metrics.get("host.ops_per_sec")
        if ops is None:
            raise SystemExit(f"perf_smoke: {path} has no host.ops_per_sec "
                             "(bench must call record_host_ops)")
        best = ops if best is None or ops > best else best
    return best


def run_host_overhead(args):
    off = best_ops_per_sec(args.committed)
    on = best_ops_per_sec(args.fresh)
    floor = off * (1.0 - args.overhead_tolerance)
    overhead = 1.0 - on / off if off > 0 else 0.0
    print(f"  telemetry off: {off:.0f} ops/s (best of "
          f"{args.committed.count(',') + 1})")
    print(f"  telemetry on : {on:.0f} ops/s (best of "
          f"{args.fresh.count(',') + 1})")
    print(f"  overhead     : {overhead * 100.0:.2f}% "
          f"(limit {args.overhead_tolerance * 100.0:.1f}%)")
    if on < floor:
        print(f"PERF SMOKE FAIL: telemetry-on hot path below "
              f"{floor:.0f} ops/s floor", file=sys.stderr)
        return 1
    print("PERF SMOKE PASS (telemetry overhead within budget)")
    return 0


def policy_rows(metrics):
    """Map row name -> {metric: value} over the policy.* gauges."""
    rows = {}
    for name, value in metrics.items():
        if not name.startswith("policy."):
            continue
        row, _, metric = name[len("policy."):].rpartition(".")
        if row:
            rows.setdefault(row, {})[metric] = value
    return rows


def run_policy(args):
    committed = policy_rows(flat_metrics(load_doc(args.committed)))
    fresh = policy_rows(flat_metrics(load_doc(args.fresh)))
    failures = []
    checked = 0
    if not fresh:
        failures.append("fresh run has no policy.* gauges — wrong file?")
    for row in sorted(committed):
        if row not in fresh:
            failures.append(f"{row}: missing from fresh run")
    for row in sorted(fresh):
        metrics = fresh[row]
        if metrics.get("exact") == 1.0:
            checked += 1
            inv = metrics.get("inversions")
            status = "ok" if inv == 0 else "INVERTED"
            print(f"  {row}: exact PIFO, {inv:.0f} inversions {status}")
            if inv != 0:
                failures.append(
                    f"{row}: exact PIFO reported {inv:.0f} inversions "
                    "(must be exactly 0)")
            continue
        base = committed.get(row, {}).get("inversion_rate")
        rate = metrics.get("inversion_rate", 0.0)
        if base is None:
            print(f"  {row}: inversion rate {rate:.4f} (new row, no envelope)")
            continue
        checked += 1
        limit = base * (1.0 + args.tolerance)
        status = "ok" if rate <= limit else "REGRESSED"
        print(f"  {row}: inversion rate {base:.4f} -> {rate:.4f} "
              f"(limit {limit:.4f}) {status}")
        if rate > limit:
            failures.append(f"{row}: inversion rate {rate:.4f} > {limit:.4f}")
        if base > 0.0 and rate == 0.0:
            failures.append(
                f"{row}: committed inversion rate {base:.4f} but fresh run saw "
                "none — is the inversion meter still observing this row?")
    if checked == 0:
        failures.append("no policy rows checked — wrong file pair?")
    if failures:
        print(f"PERF SMOKE FAIL ({len(failures)} issue(s)):", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print(f"PERF SMOKE PASS ({checked} policy checks)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("committed",
                        help="committed artifact, or telemetry-OFF list in "
                             "--host-overhead mode")
    parser.add_argument("fresh",
                        help="fresh run, or telemetry-ON list in "
                             "--host-overhead mode")
    parser.add_argument("--tolerance", type=float, default=0.05,
                        help="allowed fractional cycles/op regression (default 5%%)")
    parser.add_argument("--policy", action="store_true",
                        help="gate bench/policy_comparison artifacts: exact "
                             "rows invert zero times, approximation rows stay "
                             "inside the committed inversion-rate envelope")
    parser.add_argument("--host-overhead", action="store_true",
                        help="gate telemetry cost: both args are same-machine "
                             "host.ops_per_sec runs, plain vs --timeseries")
    parser.add_argument("--overhead-tolerance", type=float, default=0.03,
                        help="allowed telemetry slowdown (default 3%%)")
    parser.add_argument("--ffs-speedup-floor", type=float, default=3.0,
                        help="minimum host.ffs.speedup_vs_model (same-process "
                             "ratio; default 3.0)")
    parser.add_argument("--pipeline-speedup-floor", type=float, default=2.5,
                        help="minimum host.pipeline.speedup_vs_sequential when "
                             "threads >= 8 and the machine has >= 8 hardware "
                             "threads (default 2.5)")
    parser.add_argument("--model-floor", type=float, default=None,
                        help="absolute host.model.ops_per_sec floor "
                             "(machine-specific; off by default)")
    parser.add_argument("--ffs-floor", type=float, default=None,
                        help="absolute host.ffs.ops_per_sec floor "
                             "(machine-specific; off by default)")
    args = parser.parse_args()

    if args.host_overhead:
        return run_host_overhead(args)
    if args.policy:
        return run_policy(args)

    committed_doc = load_doc(args.committed)
    fresh_doc = load_doc(args.fresh)
    committed = flat_metrics(committed_doc)
    fresh = flat_metrics(fresh_doc)
    failures = []
    checked = 0

    for name, base in sorted(committed.items()):
        if "host." in name:
            continue  # wall-clock numbers: machine-dependent, informational
        if "cycles_per_op" in name:
            now = fresh.get(name)
            if now is None:
                failures.append(f"{name}: missing from fresh run")
                continue
            checked += 1
            limit = base * (1.0 + args.tolerance)
            status = "ok" if now <= limit else "REGRESSED"
            print(f"  {name}: {base:.4f} -> {now:.4f} (limit {limit:.4f}) {status}")
            if now > limit:
                failures.append(f"{name}: {now:.4f} > {limit:.4f}")

    if "hw.cycles" in committed:
        now = fresh.get("hw.cycles")
        checked += 1
        if now != committed["hw.cycles"]:
            failures.append(
                f"hw.cycles: {now} != committed {committed['hw.cycles']} "
                "(modeled circuit changed; regenerate the artifact if intended)")
        else:
            print(f"  hw.cycles: {now} (exact match)")

    gate = "shard_scaling.n1_identical_to_single"
    if gate in fresh:
        checked += 1
        if fresh[gate] != 1.0:
            failures.append(f"{gate}: N=1 sharded run diverged from the bare sorter")
        else:
            print(f"  {gate}: 1 (N=1 bit/cycle identity holds)")

    gate = "host.pipeline.identical_to_sequential"
    if gate in fresh:
        checked += 1
        if fresh[gate] != 1.0:
            failures.append(
                f"{gate}: pipelined SimResult diverged from the sequential driver")
        else:
            print(f"  {gate}: 1 (host pipeline bit-identical to sequential)")

    gate = "host.ffs.speedup_vs_model"
    if gate in fresh:
        checked += 1
        ratio = fresh[gate]
        if ratio < args.ffs_speedup_floor:
            failures.append(f"{gate}: {ratio:.2f} < floor "
                            f"{args.ffs_speedup_floor:.2f} (ffs backend lost "
                            "its edge over the cycle model)")
        else:
            print(f"  {gate}: {ratio:.2f} (floor {args.ffs_speedup_floor:.2f})")

    threads = fresh.get("host.pipeline.threads", 0)
    cores = fresh.get("host.hardware_concurrency", 0)
    gate = "host.pipeline.speedup_vs_sequential"
    if gate in fresh and threads >= 8 and cores >= 8:
        checked += 1
        ratio = fresh[gate]
        if ratio < args.pipeline_speedup_floor:
            failures.append(
                f"{gate}: {ratio:.2f} < floor {args.pipeline_speedup_floor:.2f} "
                f"at {threads:.0f} threads on {cores:.0f} hardware threads")
        else:
            print(f"  {gate}: {ratio:.2f} "
                  f"(floor {args.pipeline_speedup_floor:.2f}, "
                  f"{threads:.0f} threads, {cores:.0f} hw threads)")
    elif gate in fresh:
        print(f"  {gate}: {fresh[gate]:.2f} (informational: "
              f"{threads:.0f} threads on {cores:.0f} hw threads — speedup "
              "gate needs >= 8 of both)")

    for floor, name in ((args.model_floor, "host.model.ops_per_sec"),
                        (args.ffs_floor, "host.ffs.ops_per_sec")):
        if floor is None:
            continue
        now = fresh.get(name)
        checked += 1
        if now is None:
            failures.append(f"{name}: missing from fresh run (floor requested)")
        elif now < floor:
            failures.append(f"{name}: {now:.0f} < floor {floor:.0f}")
        else:
            print(f"  {name}: {now:.0f} (floor {floor:.0f})")

    stall_breakdown(committed, fresh, fresh_doc)

    if checked == 0:
        failures.append("no comparable modeled metrics found — wrong file pair?")

    if failures:
        print(f"PERF SMOKE FAIL ({len(failures)} issue(s)):", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print(f"PERF SMOKE PASS ({checked} checks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
