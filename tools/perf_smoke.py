#!/usr/bin/env python3
"""Perf smoke gate: compare a fresh bench JSON against the committed artifact.

Usage: perf_smoke.py <committed.json> <fresh.json> [--tolerance FRAC]

Checks (all on *modeled*, machine-independent metrics):
  1. every committed gauge whose name contains "cycles_per_op" must not
     regress: fresh <= committed * (1 + tolerance)  [lower is better];
  2. the "hw.cycles" counter, when present, must match exactly — the
     cycle-accurate simulation is deterministic at a fixed seed, so any
     drift means the modeled circuit changed without the artifact being
     regenerated;
  3. the "shard_scaling.n1_identical_to_single" gauge, when present, must
     be 1.0 in the fresh run (the bench also exits non-zero on its own);
  4. the "host.pipeline.identical_to_sequential" gauge, when present,
     must be 1.0 — the multi-threaded host pipeline reproduced the
     sequential SimDriver bit for bit. Together with check 2 this gates
     that running a bench with --threads (including --threads 1, the
     delegating path) keeps "hw.cycles" exactly unchanged: the pipeline
     never touches the bench-registered simulation.

host.* *wall-clock* gauges (elapsed_ms, ops_per_sec) vary machine to
machine and are skipped by the name scan; the identity gate above is the
one host.* value that is machine-independent. Exits 0 when every check
passes, 1 otherwise.
"""

import argparse
import json
import sys


def load_metrics(path):
    with open(path) as f:
        doc = json.load(f)
    metrics = doc.get("metrics", {})
    flat = {}
    flat.update(metrics.get("counters", {}))
    flat.update(metrics.get("gauges", {}))
    return flat


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("committed")
    parser.add_argument("fresh")
    parser.add_argument("--tolerance", type=float, default=0.05,
                        help="allowed fractional cycles/op regression (default 5%%)")
    args = parser.parse_args()

    committed = load_metrics(args.committed)
    fresh = load_metrics(args.fresh)
    failures = []
    checked = 0

    for name, base in sorted(committed.items()):
        if "host." in name:
            continue  # wall-clock numbers: machine-dependent, informational
        if "cycles_per_op" in name:
            now = fresh.get(name)
            if now is None:
                failures.append(f"{name}: missing from fresh run")
                continue
            checked += 1
            limit = base * (1.0 + args.tolerance)
            status = "ok" if now <= limit else "REGRESSED"
            print(f"  {name}: {base:.4f} -> {now:.4f} (limit {limit:.4f}) {status}")
            if now > limit:
                failures.append(f"{name}: {now:.4f} > {limit:.4f}")

    if "hw.cycles" in committed:
        now = fresh.get("hw.cycles")
        checked += 1
        if now != committed["hw.cycles"]:
            failures.append(
                f"hw.cycles: {now} != committed {committed['hw.cycles']} "
                "(modeled circuit changed; regenerate the artifact if intended)")
        else:
            print(f"  hw.cycles: {now} (exact match)")

    gate = "shard_scaling.n1_identical_to_single"
    if gate in fresh:
        checked += 1
        if fresh[gate] != 1.0:
            failures.append(f"{gate}: N=1 sharded run diverged from the bare sorter")
        else:
            print(f"  {gate}: 1 (N=1 bit/cycle identity holds)")

    gate = "host.pipeline.identical_to_sequential"
    if gate in fresh:
        checked += 1
        if fresh[gate] != 1.0:
            failures.append(
                f"{gate}: pipelined SimResult diverged from the sequential driver")
        else:
            print(f"  {gate}: 1 (host pipeline bit-identical to sequential)")

    if checked == 0:
        failures.append("no comparable modeled metrics found — wrong file pair?")

    if failures:
        print(f"PERF SMOKE FAIL ({len(failures)} issue(s)):", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print(f"PERF SMOKE PASS ({checked} checks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
