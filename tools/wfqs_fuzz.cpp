// wfqs_fuzz: the standalone conformance fuzzer.
//
// Drives randomized op sequences (and randomized scheduler workloads)
// through every standard sorter configuration, differentially checked
// against the golden models of src/ref. On a divergence the failing
// sequence is shrunk to a minimal reproducer and written as a replayable
// `.ops` artifact; the printed command line replays it.
//
//   wfqs_fuzz --minutes 10 --seed 7            # time-budgeted soak
//   wfqs_fuzz --cases 200 --ops 5000           # fixed-size run
//   wfqs_fuzz --target matcher                 # one family only
//   wfqs_fuzz --replay tests/corpus/foo.ops    # replay an artifact
//
// Exit code: 0 = no divergence, 1 = divergence found, 2 = usage error.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "matcher/matcher.hpp"
#include "proptest/differ.hpp"
#include "proptest/proptest.hpp"

namespace {

using namespace wfqs;
using namespace wfqs::proptest;

struct Options {
    std::uint64_t seed = 1;
    std::size_t ops = 5000;        ///< ops per generated case
    std::size_t cases = 0;         ///< 0 = unbounded (budget-limited)
    double minutes = 1.0;          ///< wall-clock budget; 0 = unbounded
    std::string target = "all";    ///< tag | sharded | matcher | scheduler | all
    std::string artifact_dir = ".";
    std::string replay;            ///< replay one .ops file instead of fuzzing
};

[[noreturn]] void usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s [--seed N] [--ops N] [--cases N] [--minutes F]\n"
                 "          [--target tag|sharded|matcher|scheduler|all]\n"
                 "          [--artifact-dir DIR] [--replay FILE.ops]\n",
                 argv0);
    std::exit(2);
}

Options parse_args(int argc, char** argv) {
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc) usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--seed") opt.seed = std::strtoull(value().c_str(), nullptr, 0);
        else if (arg == "--ops") opt.ops = std::strtoull(value().c_str(), nullptr, 0);
        else if (arg == "--cases") opt.cases = std::strtoull(value().c_str(), nullptr, 0);
        else if (arg == "--minutes") opt.minutes = std::strtod(value().c_str(), nullptr);
        else if (arg == "--target") opt.target = value();
        else if (arg == "--artifact-dir") opt.artifact_dir = value();
        else if (arg == "--replay") opt.replay = value();
        else usage(argv[0]);
    }
    if (opt.target != "all" && opt.target != "tag" && opt.target != "sharded" &&
        opt.target != "matcher" && opt.target != "scheduler")
        usage(argv[0]);
    return opt;
}

struct Budget {
    std::chrono::steady_clock::time_point start = std::chrono::steady_clock::now();
    double minutes;
    bool expired() const {
        if (minutes <= 0) return false;
        const auto elapsed = std::chrono::steady_clock::now() - start;
        return std::chrono::duration<double>(elapsed).count() >= minutes * 60.0;
    }
};

std::uint64_t g_total_ops = 0;

/// One fuzz pass of a sorter family config; returns false on divergence.
bool fuzz_sorter_config(const std::string& name, const CheckFn& check,
                        std::uint64_t span, const Options& opt,
                        std::uint64_t round) {
    RunConfig cfg;
    cfg.seed = case_seed(opt.seed, round * 1000003);
    cfg.cases = 5;  // one case per profile per round
    cfg.ops_per_case = opt.ops;
    cfg.profiles = all_profiles(span);
    cfg.artifact_dir = opt.artifact_dir;
    cfg.artifact_stem = name;
    const auto failure = run_property(cfg, check);
    g_total_ops += cfg.cases * cfg.ops_per_case;
    if (!failure) return true;
    std::printf("FAIL %s: %s\n", name.c_str(), failure->message.c_str());
    std::printf("  profile %s, case seed %llu, minimized %zu ops (from %zu)\n",
                failure->profile.c_str(),
                static_cast<unsigned long long>(failure->seed), failure->ops.size(),
                failure->original_size);
    std::printf("  artifact: %s\n  replay:   wfqs_fuzz --replay %s\n",
                failure->artifact_path.c_str(), failure->artifact_path.c_str());
    return false;
}

bool fuzz_tag(const Options& opt, std::uint64_t round) {
    for (const auto& entry : standard_tag_configs()) {
        hw::Simulation probe_sim;
        const std::uint64_t span =
            core::TagSorter(entry.config, probe_sim).window_span();
        const CheckFn check = [&](const OpSeq& ops) {
            return diff_tag_sorter(ops, entry.config);
        };
        if (!fuzz_sorter_config("tag-" + entry.name, check, span, opt, round))
            return false;
    }
    // The netlist engines on the paper geometry (slower: gate-level).
    for (const matcher::MatcherKind kind : matcher::all_matcher_kinds()) {
        matcher::NetlistMatcher engine(kind);
        core::TagSorter::Config config;
        const CheckFn check = [&](const OpSeq& ops) {
            return diff_tag_sorter(ops, config, &engine);
        };
        hw::Simulation probe_sim;
        const std::uint64_t span = core::TagSorter(config, probe_sim).window_span();
        if (!fuzz_sorter_config("tag-netlist-" + engine.name(), check, span, opt,
                                round))
            return false;
    }
    return true;
}

bool fuzz_sharded(const Options& opt, std::uint64_t round) {
    for (const auto& entry : standard_sharded_configs()) {
        hw::Simulation probe_sim;
        const std::uint64_t bank_span =
            core::TagSorter(entry.config.bank, probe_sim).window_span();
        const CheckFn check = [&](const OpSeq& ops) {
            return diff_sharded_sorter(ops, entry.config, entry.flow_mode);
        };
        // Profiles scale to the *bank* span: safe under both policies (the
        // aggregate window is never narrower than one bank's).
        if (!fuzz_sorter_config("sharded-" + entry.name, check, bank_span, opt,
                                round))
            return false;
    }
    return true;
}

bool fuzz_matcher(const Options& opt, std::uint64_t round) {
    const std::vector<unsigned> widths = {2, 3, 4, 8, 16, 24, 32, 48, 64};
    matcher::BehavioralMatcher behavioral;
    for (const unsigned width : widths) {
        const std::uint64_t seed = case_seed(opt.seed ^ width, round);
        if (auto err = diff_matcher_width(behavioral, width, 8, 2000, seed)) {
            std::printf("FAIL matcher-behavioral: %s\n", err->c_str());
            return false;
        }
        g_total_ops += 2000;
        for (const matcher::MatcherKind kind : matcher::all_matcher_kinds()) {
            matcher::NetlistMatcher engine(kind);
            if (auto err = diff_matcher_width(engine, width, 8, 500, seed)) {
                std::printf("FAIL matcher-%s: %s\n", engine.name().c_str(),
                            err->c_str());
                return false;
            }
            g_total_ops += 500;
        }
    }
    return true;
}

bool fuzz_scheduler(const Options& opt, std::uint64_t round) {
    std::vector<SchedulerDiffConfig> configs(3);
    configs[0].kind = SchedulerDiffConfig::Kind::kWfq;
    configs[1].kind = SchedulerDiffConfig::Kind::kWf2q;
    configs[2].kind = SchedulerDiffConfig::Kind::kWfq;
    configs[2].queue = baselines::QueueKind::MultibitTree;
    configs[2].range_bits = 28;
    const char* names[] = {"wfq-heap", "wf2q-heap", "wfq-multibit"};
    for (std::size_t i = 0; i < configs.size(); ++i) {
        configs[i].seed = case_seed(opt.seed + i, round);
        if (auto err = diff_scheduler_vs_gps(configs[i])) {
            std::printf("FAIL scheduler-%s (seed %llu): %s\n", names[i],
                        static_cast<unsigned long long>(configs[i].seed),
                        err->c_str());
            return false;
        }
        g_total_ops += 1000;  // rough: packets per run
    }
    return true;
}

int replay(const Options& opt) {
    OpSeq ops;
    try {
        ops = read_ops_file(opt.replay);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "wfqs_fuzz: %s\n", e.what());
        return 2;
    }
    std::printf("replaying %zu ops from %s\n", ops.size(), opt.replay.c_str());
    bool ok = true;
    for (const auto& entry : standard_tag_configs()) {
        if (auto err = diff_tag_sorter(ops, entry.config)) {
            std::printf("FAIL tag-%s: %s\n", entry.name.c_str(), err->c_str());
            ok = false;
        }
    }
    for (const auto& entry : standard_sharded_configs()) {
        if (auto err = diff_sharded_sorter(ops, entry.config, entry.flow_mode)) {
            std::printf("FAIL sharded-%s: %s\n", entry.name.c_str(), err->c_str());
            ok = false;
        }
    }
    std::printf("%s\n", ok ? "ok: every configuration conforms" : "DIVERGENCE");
    return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    const Options opt = parse_args(argc, argv);
    if (!opt.replay.empty()) return replay(opt);

    const Budget budget{std::chrono::steady_clock::now(), opt.minutes};
    const bool do_tag = opt.target == "all" || opt.target == "tag";
    const bool do_sharded = opt.target == "all" || opt.target == "sharded";
    const bool do_matcher = opt.target == "all" || opt.target == "matcher";
    const bool do_scheduler = opt.target == "all" || opt.target == "scheduler";

    std::uint64_t round = 0;
    std::size_t cases_done = 0;
    bool ok = true;
    while (ok) {
        if (budget.expired()) break;
        if (opt.cases != 0 && cases_done >= opt.cases) break;
        if (do_tag) ok = ok && fuzz_tag(opt, round);
        if (ok && do_sharded) ok = ok && fuzz_sharded(opt, round);
        if (ok && do_matcher) ok = ok && fuzz_matcher(opt, round);
        if (ok && do_scheduler) ok = ok && fuzz_scheduler(opt, round);
        ++round;
        ++cases_done;
        std::printf("round %llu complete, ~%llu ops total\n",
                    static_cast<unsigned long long>(round),
                    static_cast<unsigned long long>(g_total_ops));
        std::fflush(stdout);
    }
    std::printf("%s after %llu round(s), ~%llu randomized ops\n",
                ok ? "ok: no divergence" : "DIVERGENCE FOUND",
                static_cast<unsigned long long>(round),
                static_cast<unsigned long long>(g_total_ops));
    return ok ? 0 : 1;
}
