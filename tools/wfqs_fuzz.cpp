// wfqs_fuzz: the standalone conformance fuzzer.
//
// Drives randomized op sequences (and randomized scheduler workloads)
// through every standard sorter configuration, differentially checked
// against the golden models of src/ref. On a divergence the failing
// sequence is shrunk to a minimal reproducer and written as a replayable
// `.ops` artifact; the printed command line replays it.
//
//   wfqs_fuzz --minutes 10 --seed 7            # time-budgeted soak
//   wfqs_fuzz --cases 200 --ops 5000           # fixed-size run
//   wfqs_fuzz --target matcher                 # one family only
//   wfqs_fuzz --threads 4 --minutes 5          # parallel soak (N workers)
//   wfqs_fuzz --replay tests/corpus/foo.ops    # replay an artifact
//   wfqs_fuzz --flight crash.ops --minutes 5   # post-mortem flight dump
//
// --flight PATH arms the flight recorder: on a divergence the minimized
// reproducer is recorded into the ring with a divergence marker and
// dumped to PATH as an annotated, replayable `.ops` artifact (crash and
// terminate paths dump whatever the ring holds). Flight dumps from any
// source — including bench/fault_soak --flight — replay here via
// --replay, since parse_ops skips the `# ev` annotation lines.
//
// --threads N runs N soak workers over decorrelated round numbers; the
// first divergence stops every worker. Each differential harness is
// self-contained (own Simulation, own reference), so workers share
// nothing but the atomic op counter and the failure latch.
//
// Exit code: 0 = no divergence, 1 = divergence found, 2 = usage error.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "baselines/factory.hpp"
#include "matcher/matcher.hpp"
#include "net/parallel_driver.hpp"
#include "obs/flight_recorder.hpp"
#include "proptest/differ.hpp"
#include "proptest/proptest.hpp"

namespace {

using namespace wfqs;
using namespace wfqs::proptest;

struct Options {
    std::uint64_t seed = 1;
    std::size_t ops = 5000;        ///< ops per generated case
    std::size_t cases = 0;         ///< 0 = unbounded (budget-limited)
    double minutes = 1.0;          ///< wall-clock budget; 0 = unbounded
    unsigned threads = 1;          ///< soak workers
    std::string target = "all";    ///< tag|ffs|geometry|sharded|baseline|matcher|scheduler|policy|pipeline|all
    std::string artifact_dir = ".";
    std::string replay;            ///< replay one .ops file instead of fuzzing
    std::string flight;            ///< flight-recorder dump path ("" = off)
    /// Sorter backend behind the pipeline target's tag queue (--backend,
    /// falling back to the WFQS_BACKEND env var). The differential
    /// families always run the backends they exist to compare.
    baselines::SorterBackend backend = baselines::SorterBackend::kModel;
};

[[noreturn]] void usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s [--seed N] [--ops N] [--cases N] [--minutes F]\n"
                 "          [--threads N]\n"
                 "          [--target tag|ffs|geometry|sharded|baseline|matcher|"
                 "scheduler|policy|pipeline|all]\n"
                 "          [--backend model|ffs]  (pipeline queue; env WFQS_BACKEND)\n"
                 "          [--artifact-dir DIR] [--replay FILE.ops]\n"
                 "          [--flight DUMP.ops]\n",
                 argv0);
    std::exit(2);
}

Options parse_args(int argc, char** argv) {
    Options opt;
    std::string backend;
    if (const char* env = std::getenv("WFQS_BACKEND")) backend = env;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc) usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--seed") opt.seed = std::strtoull(value().c_str(), nullptr, 0);
        else if (arg == "--ops") opt.ops = std::strtoull(value().c_str(), nullptr, 0);
        else if (arg == "--cases") opt.cases = std::strtoull(value().c_str(), nullptr, 0);
        else if (arg == "--minutes") opt.minutes = std::strtod(value().c_str(), nullptr);
        else if (arg == "--threads")
            opt.threads = static_cast<unsigned>(std::strtoul(value().c_str(), nullptr, 0));
        else if (arg == "--target") opt.target = value();
        else if (arg == "--backend") backend = value();
        else if (arg == "--artifact-dir") opt.artifact_dir = value();
        else if (arg == "--replay") opt.replay = value();
        else if (arg == "--flight") opt.flight = value();
        else usage(argv[0]);
    }
    if (opt.target != "all" && opt.target != "tag" && opt.target != "ffs" &&
        opt.target != "geometry" && opt.target != "sharded" &&
        opt.target != "baseline" && opt.target != "matcher" &&
        opt.target != "scheduler" && opt.target != "policy" &&
        opt.target != "pipeline")
        usage(argv[0]);
    if (!backend.empty()) {
        const auto parsed = baselines::backend_from_name(backend);
        if (!parsed) usage(argv[0]);
        opt.backend = *parsed;
    }
    if (opt.threads == 0) opt.threads = 1;
    return opt;
}

struct Budget {
    std::chrono::steady_clock::time_point start = std::chrono::steady_clock::now();
    double minutes;
    bool expired() const {
        if (minutes <= 0) return false;
        const auto elapsed = std::chrono::steady_clock::now() - start;
        return std::chrono::duration<double>(elapsed).count() >= minutes * 60.0;
    }
};

std::atomic<std::uint64_t> g_total_ops{0};
std::mutex g_print_mutex;  ///< serializes failure reports across workers
std::string g_flight_path;  ///< set once in main before workers start

/// With --flight: push the minimized reproducer into the flight ring (op
/// events replay verbatim), mark the divergence, and dump. The recorder
/// serializes internally, so concurrent workers can land here safely.
void flight_dump_failure(const std::string& name, const OpSeq& ops,
                         const std::string& message) {
    obs::FlightRecorder* rec = obs::FlightRecorder::current();
    if (rec == nullptr) return;
    double t = 0.0;
    for (const Op& op : ops) {
        switch (op.kind) {
            case OpKind::kInsert:
                obs::flight_record(obs::FlightEventKind::kInsert, t, op.delta);
                break;
            case OpKind::kPop:
                obs::flight_record(obs::FlightEventKind::kPop, t);
                break;
            case OpKind::kCombined:
                obs::flight_record(obs::FlightEventKind::kCombined, t, op.delta);
                break;
            case OpKind::kAddBank:
                obs::flight_record(obs::FlightEventKind::kReshard, t, 0);
                break;
            case OpKind::kRemoveBank:
                obs::flight_record(obs::FlightEventKind::kReshard, t, 1, op.delta);
                break;
            case OpKind::kPumpMigration:
                obs::flight_record(obs::FlightEventKind::kReshard, t, 3, op.delta);
                break;
        }
        t += 1.0;
    }
    obs::flight_record(obs::FlightEventKind::kDivergence, t,
                       static_cast<std::int64_t>(ops.size()));
    rec->dump_to_file(g_flight_path, name + " divergence\n" + message +
                                         "\nreplay: wfqs_fuzz --replay " +
                                         g_flight_path);
}

/// One fuzz pass of a config over an explicit profile list; returns
/// false on divergence.
bool fuzz_profiles_config(const std::string& name, const CheckFn& check,
                          std::vector<GenProfile> profiles, const Options& opt,
                          std::uint64_t round) {
    RunConfig cfg;
    cfg.seed = case_seed(opt.seed, round * 1000003);
    cfg.ops_per_case = opt.ops;
    cfg.profiles = std::move(profiles);
    cfg.cases = cfg.profiles.size();  // one case per profile per round
    cfg.artifact_dir = opt.artifact_dir;
    cfg.artifact_stem = name;
    const auto failure = run_property(cfg, check);
    g_total_ops += cfg.cases * cfg.ops_per_case;
    if (!failure) return true;
    const std::lock_guard<std::mutex> lock(g_print_mutex);
    std::printf("FAIL %s: %s\n", name.c_str(), failure->message.c_str());
    std::printf("  profile %s, case seed %llu, minimized %zu ops (from %zu)\n",
                failure->profile.c_str(),
                static_cast<unsigned long long>(failure->seed), failure->ops.size(),
                failure->original_size);
    std::printf("  artifact: %s\n  replay:   wfqs_fuzz --replay %s\n",
                failure->artifact_path.c_str(), failure->artifact_path.c_str());
    flight_dump_failure(name, failure->ops, failure->message);
    return false;
}

/// One fuzz pass of a sorter family config; returns false on divergence.
/// `extra` appends target-specific profiles beyond the standard five
/// (the sharded target adds reshard churn, which only its hook executes).
bool fuzz_sorter_config(const std::string& name, const CheckFn& check,
                        std::uint64_t span, const Options& opt,
                        std::uint64_t round,
                        const std::vector<GenProfile>& extra = {}) {
    std::vector<GenProfile> profiles = all_profiles(span);
    for (const GenProfile& p : extra) profiles.push_back(p);
    return fuzz_profiles_config(name, check, std::move(profiles), opt, round);
}

bool fuzz_tag(const Options& opt, std::uint64_t round) {
    for (const auto& entry : standard_tag_configs()) {
        hw::Simulation probe_sim;
        const std::uint64_t span =
            core::TagSorter(entry.config, probe_sim).window_span();
        const CheckFn check = [&](const OpSeq& ops) {
            return diff_tag_sorter(ops, entry.config);
        };
        if (!fuzz_sorter_config("tag-" + entry.name, check, span, opt, round))
            return false;
    }
    // The netlist engines on the paper geometry (slower: gate-level).
    for (const matcher::MatcherKind kind : matcher::all_matcher_kinds()) {
        matcher::NetlistMatcher engine(kind);
        core::TagSorter::Config config;
        const CheckFn check = [&](const OpSeq& ops) {
            return diff_tag_sorter(ops, config, &engine);
        };
        hw::Simulation probe_sim;
        const std::uint64_t span = core::TagSorter(config, probe_sim).window_span();
        if (!fuzz_sorter_config("tag-netlist-" + engine.name(), check, span, opt,
                                round))
            return false;
    }
    return true;
}

/// The host-native backend in three-way lockstep: RefSorter arbitrates
/// while TagSorter and FfsSorter both execute every op, with cross-checks
/// (state + full stats parity) at every step. Spans come from the ffs
/// instance itself — identical to the model's by construction, but this
/// way a window-math divergence shows up as a differ failure, not a
/// generator mismatch.
bool fuzz_ffs(const Options& opt, std::uint64_t round) {
    for (const auto& entry : standard_tag_configs()) {
        const std::uint64_t span = core::FfsSorter(entry.config).window_span();
        const CheckFn check = [&](const OpSeq& ops) {
            return diff_ffs_sorter(ops, entry.config);
        };
        if (!fuzz_sorter_config("ffs-" + entry.name, check, span, opt, round))
            return false;
    }
    return true;
}

/// Geometry soak: only the wide/tiered rows of the standard matrix (tag
/// spaces beyond the paper's 12 bits), through both the cycle-level model
/// and the host-native backend. The standard profiles already scale to
/// each row's window span; seam-rider runs twice per round because the
/// physical wrap seam is the whole point of this target.
bool fuzz_geometry(const Options& opt, std::uint64_t round) {
    for (const auto& entry : standard_tag_configs()) {
        const bool wide = entry.config.geometry.tag_bits() >
                              tree::TreeGeometry::paper().tag_bits() ||
                          entry.config.tiered_table.value_or(false);
        if (!wide) continue;
        hw::Simulation probe_sim;
        const std::uint64_t span =
            core::TagSorter(entry.config, probe_sim).window_span();
        const CheckFn model_check = [&](const OpSeq& ops) {
            return diff_tag_sorter(ops, entry.config);
        };
        if (!fuzz_sorter_config("geometry-tag-" + entry.name, model_check, span,
                                opt, round, {seam_rider_profile(span)}))
            return false;
        const CheckFn ffs_check = [&](const OpSeq& ops) {
            return diff_ffs_sorter(ops, entry.config);
        };
        if (!fuzz_sorter_config("geometry-ffs-" + entry.name, ffs_check, span,
                                opt, round, {seam_rider_profile(span)}))
            return false;
    }
    return true;
}

bool fuzz_sharded(const Options& opt, std::uint64_t round) {
    for (const auto& entry : standard_sharded_configs()) {
        hw::Simulation probe_sim;
        const std::uint64_t bank_span =
            core::TagSorter(entry.config.bank, probe_sim).window_span();
        const CheckFn check = [&](const OpSeq& ops) {
            return diff_sharded_sorter(ops, entry.config, entry.flow_mode, {},
                                       entry.reshard);
        };
        // Profiles scale to the *bank* span: safe under both policies (the
        // aggregate window is never narrower than one bank's). Every
        // sharded row also runs the reshard-churn profile: live bank
        // add/remove and migration pumps race wrap-heavy traffic (and, on
        // the reshard row, autonomous rebalancing); interleave rows take
        // the same ops through the refusal paths.
        if (!fuzz_sorter_config("sharded-" + entry.name, check, bank_span, opt,
                                round, {reshard_churn_profile(bank_span)}))
            return false;
    }
    return true;
}

bool fuzz_baseline(const Options& opt, std::uint64_t round) {
    for (const auto& entry : standard_baseline_configs()) {
        const CheckFn check = [&](const OpSeq& ops) {
            return diff_baseline_queue(ops, entry);
        };
        if (!fuzz_sorter_config("baseline-" + entry.name, check, entry.span, opt,
                                round))
            return false;
    }
    return true;
}

/// Lockstep soak of the multi-threaded host pipeline: the parallel
/// driver must reproduce the sequential SimResult bit for bit on a
/// randomized workload, at several thread counts.
bool fuzz_pipeline(const Options& opt, std::uint64_t round) {
    const std::uint64_t seed = case_seed(opt.seed + 0x917, round);
    const std::uint64_t rate = 20'000'000 * (1 + seed % 4);
    const net::TimeNs horizon = 30'000'000 * (1 + seed % 3);  // 30–90 ms
    const auto run_with = [&](unsigned threads) {
        scheduler::FairQueueingScheduler::Config sc;
        sc.link_rate_bps = rate;
        sc.tag_granularity_bits = -6;
        baselines::QueueParams qp;
        qp.range_bits = 20;
        qp.capacity = 1 << 16;
        qp.backend = opt.backend;
        scheduler::FairQueueingScheduler sched(
            sc, baselines::make_tag_queue(baselines::QueueKind::MultibitTree, qp));
        auto flows = net::make_mixed_profile(horizon, seed);
        if (threads == 0) {
            net::SimDriver driver(rate);
            return driver.run(sched, flows);
        }
        net::ParallelSimDriver driver(rate, threads);
        return driver.run(sched, flows);
    };
    const auto sequential = run_with(0);
    for (const unsigned threads : {2u, 4u}) {
        const auto parallel = run_with(threads);
        if (!net::identical_results(sequential, parallel)) {
            const std::lock_guard<std::mutex> lock(g_print_mutex);
            std::printf("FAIL pipeline: %u-thread SimResult diverged from "
                        "sequential (seed %llu, rate %llu, fingerprints %llx vs "
                        "%llx)\n",
                        threads, static_cast<unsigned long long>(seed),
                        static_cast<unsigned long long>(rate),
                        static_cast<unsigned long long>(
                            net::result_fingerprint(sequential)),
                        static_cast<unsigned long long>(
                            net::result_fingerprint(parallel)));
            flight_dump_failure(
                "pipeline", {},
                "pipeline divergence at " + std::to_string(threads) +
                    " threads, seed " + std::to_string(seed));
            return false;
        }
    }
    g_total_ops += sequential.offered_packets * 3;
    return true;
}

/// Every rank policy × sorter geometry × backend (plus the SP-PIFO and
/// RIFO approximation mirrors) in lockstep with the src/ref rank
/// oracles. The profiles cap the backlog so every policy's live rank
/// span stays inside the narrowest sorter window in the matrix.
bool fuzz_policy(const Options& opt, std::uint64_t round) {
    for (const auto& entry : standard_policy_configs()) {
        const CheckFn check = [&](const OpSeq& ops) {
            return diff_policy_scheduler(ops, entry);
        };
        if (!fuzz_profiles_config("policy-" + entry.name, check,
                                  policy_profiles(), opt, round))
            return false;
    }
    return true;
}

bool fuzz_matcher(const Options& opt, std::uint64_t round) {
    const std::vector<unsigned> widths = {2, 3, 4, 8, 16, 24, 32, 48, 64};
    matcher::BehavioralMatcher behavioral;
    for (const unsigned width : widths) {
        const std::uint64_t seed = case_seed(opt.seed ^ width, round);
        if (auto err = diff_matcher_width(behavioral, width, 8, 2000, seed)) {
            const std::lock_guard<std::mutex> lock(g_print_mutex);
            std::printf("FAIL matcher-behavioral: %s\n", err->c_str());
            return false;
        }
        g_total_ops += 2000;
        for (const matcher::MatcherKind kind : matcher::all_matcher_kinds()) {
            matcher::NetlistMatcher engine(kind);
            if (auto err = diff_matcher_width(engine, width, 8, 500, seed)) {
                const std::lock_guard<std::mutex> lock(g_print_mutex);
                std::printf("FAIL matcher-%s: %s\n", engine.name().c_str(),
                            err->c_str());
                return false;
            }
            g_total_ops += 500;
        }
    }
    return true;
}

bool fuzz_scheduler(const Options& opt, std::uint64_t round) {
    std::vector<SchedulerDiffConfig> configs(3);
    configs[0].kind = SchedulerDiffConfig::Kind::kWfq;
    configs[1].kind = SchedulerDiffConfig::Kind::kWf2q;
    configs[2].kind = SchedulerDiffConfig::Kind::kWfq;
    configs[2].queue = baselines::QueueKind::MultibitTree;
    configs[2].range_bits = 28;
    const char* names[] = {"wfq-heap", "wf2q-heap", "wfq-multibit"};
    for (std::size_t i = 0; i < configs.size(); ++i) {
        configs[i].seed = case_seed(opt.seed + i, round);
        if (auto err = diff_scheduler_vs_gps(configs[i])) {
            const std::lock_guard<std::mutex> lock(g_print_mutex);
            std::printf("FAIL scheduler-%s (seed %llu): %s\n", names[i],
                        static_cast<unsigned long long>(configs[i].seed),
                        err->c_str());
            return false;
        }
        g_total_ops += 1000;  // rough: packets per run
    }
    return true;
}

int replay(const Options& opt) {
    OpSeq ops;
    try {
        ops = read_ops_file(opt.replay);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "wfqs_fuzz: %s\n", e.what());
        return 2;
    }
    std::printf("replaying %zu ops from %s\n", ops.size(), opt.replay.c_str());
    bool ok = true;
    for (const auto& entry : standard_tag_configs()) {
        if (auto err = diff_tag_sorter(ops, entry.config)) {
            std::printf("FAIL tag-%s: %s\n", entry.name.c_str(), err->c_str());
            ok = false;
        }
    }
    for (const auto& entry : standard_tag_configs()) {
        if (auto err = diff_ffs_sorter(ops, entry.config)) {
            std::printf("FAIL ffs-%s: %s\n", entry.name.c_str(), err->c_str());
            ok = false;
        }
    }
    for (const auto& entry : standard_sharded_configs()) {
        if (auto err = diff_sharded_sorter(ops, entry.config, entry.flow_mode, {},
                                           entry.reshard)) {
            std::printf("FAIL sharded-%s: %s\n", entry.name.c_str(), err->c_str());
            ok = false;
        }
    }
    for (const auto& entry : standard_baseline_configs()) {
        if (auto err = diff_baseline_queue(ops, entry)) {
            std::printf("FAIL baseline-%s: %s\n", entry.name.c_str(), err->c_str());
            ok = false;
        }
    }
    for (const auto& entry : standard_policy_configs()) {
        if (auto err = diff_policy_scheduler(ops, entry)) {
            std::printf("FAIL policy-%s: %s\n", entry.name.c_str(), err->c_str());
            ok = false;
        }
    }
    std::printf("%s\n", ok ? "ok: every configuration conforms" : "DIVERGENCE");
    return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    const Options opt = parse_args(argc, argv);
    if (!opt.replay.empty()) return replay(opt);

    // Armed before workers start; shared by all of them (internal mutex).
    std::optional<obs::FlightRecorder> flight;
    if (!opt.flight.empty()) {
        g_flight_path = opt.flight;
        flight.emplace(8192);
        obs::FlightRecorder::install(&*flight);
        obs::FlightRecorder::arm_crash_dump(opt.flight);
    }

    const Budget budget{std::chrono::steady_clock::now(), opt.minutes};
    const bool do_tag = opt.target == "all" || opt.target == "tag";
    const bool do_ffs = opt.target == "all" || opt.target == "ffs";
    // Not in "all": the wide rows already soak there via tag/ffs; the
    // dedicated target exists to concentrate a whole budget on them.
    const bool do_geometry = opt.target == "geometry";
    const bool do_sharded = opt.target == "all" || opt.target == "sharded";
    const bool do_baseline = opt.target == "all" || opt.target == "baseline";
    const bool do_matcher = opt.target == "all" || opt.target == "matcher";
    const bool do_scheduler = opt.target == "all" || opt.target == "scheduler";
    const bool do_policy = opt.target == "all" || opt.target == "policy";
    const bool do_pipeline = opt.target == "all" || opt.target == "pipeline";

    // One full round of every selected family at round number `round`.
    const auto run_round = [&](std::uint64_t round) {
        bool ok = true;
        if (do_tag) ok = ok && fuzz_tag(opt, round);
        if (ok && do_ffs) ok = ok && fuzz_ffs(opt, round);
        if (ok && do_geometry) ok = ok && fuzz_geometry(opt, round);
        if (ok && do_sharded) ok = ok && fuzz_sharded(opt, round);
        if (ok && do_baseline) ok = ok && fuzz_baseline(opt, round);
        if (ok && do_matcher) ok = ok && fuzz_matcher(opt, round);
        if (ok && do_scheduler) ok = ok && fuzz_scheduler(opt, round);
        if (ok && do_policy) ok = ok && fuzz_policy(opt, round);
        if (ok && do_pipeline) ok = ok && fuzz_pipeline(opt, round);
        return ok;
    };

    // Workers interleave round numbers (worker w: w, w+N, w+2N, ...), so
    // every round that would run single-threaded runs somewhere, just in
    // parallel; the first divergence latches and stops everyone.
    std::atomic<bool> failed{false};
    std::atomic<std::uint64_t> rounds_done{0};
    const auto worker = [&](unsigned index) {
        for (std::uint64_t round = index;; round += opt.threads) {
            if (failed.load(std::memory_order_acquire)) return;
            if (budget.expired()) return;
            if (opt.cases != 0 && round >= opt.cases) return;
            if (!run_round(round)) {
                failed.store(true, std::memory_order_release);
                return;
            }
            const std::uint64_t done = ++rounds_done;
            const std::lock_guard<std::mutex> lock(g_print_mutex);
            std::printf("round %llu complete, ~%llu ops total\n",
                        static_cast<unsigned long long>(done),
                        static_cast<unsigned long long>(g_total_ops.load()));
            std::fflush(stdout);
        }
    };

    if (opt.threads <= 1) {
        worker(0);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(opt.threads);
        for (unsigned w = 0; w < opt.threads; ++w) pool.emplace_back(worker, w);
        for (auto& t : pool) t.join();
    }

    const bool ok = !failed.load();
    std::printf("%s after %llu round(s), ~%llu randomized ops\n",
                ok ? "ok: no divergence" : "DIVERGENCE FOUND",
                static_cast<unsigned long long>(rounds_done.load()),
                static_cast<unsigned long long>(g_total_ops.load()));
    return ok ? 0 : 1;
}
